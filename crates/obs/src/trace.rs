//! Request-scoped tracing: a propagatable [`TraceContext`], an
//! [`RequestTrace`] accumulator that collects per-stage spans across
//! threads, and a bounded [`FlightRecorder`] ring buffer of completed
//! traces for the `/traces` endpoints.
//!
//! This is deliberately separate from the thread-local [`crate::span!`]
//! machinery: serve jobs cross threads (HTTP handler → lane worker), so a
//! request trace is an `Arc`-shared accumulator rather than a stack. Spans
//! come in two kinds:
//!
//! - **wall** spans measure elapsed real time and must nest inside their
//!   parent (the audit checks that wall children sum to ≤ the parent's
//!   duration);
//! - **modelled** spans carry simulator cost-model time (e.g. the GPU
//!   H2D+D2H transfer estimate), which can legitimately exceed wall time
//!   because the simulation runs faster than the device it models. They
//!   are excluded from the containment check.
//!
//! Wire format of the `X-Omega-Trace` header: `<trace_id>-<span_id>`,
//! both zero-padded 16-digit lowercase hex. An inbound header adopts the
//! caller's trace id and parents the request root under the caller's span,
//! which is what the future scatter-gather coordinator needs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::JsonObject;

/// A trace identity as carried on the wire: which trace, and which span
/// within it is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id, non-zero.
    pub trace_id: u64,
    /// Parent span id within the trace (0 = no parent).
    pub span_id: u64,
}

impl TraceContext {
    /// Parses an `X-Omega-Trace` header value
    /// (`<16 hex>-<16 hex>`); `None` if malformed or the trace id is 0.
    pub fn parse(text: &str) -> Option<TraceContext> {
        let text = text.trim();
        let (t, s) = text.split_once('-')?;
        if t.len() != 16 || s.len() != 16 {
            return None;
        }
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id })
    }

    /// Renders the wire form (`<16 hex>-<16 hex>`).
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }
}

/// Allocates a fresh process-unique trace id (non-zero). Mixes a
/// wall-clock sample with a process counter so ids from different daemon
/// instances rarely collide.
pub fn fresh_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    (seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1)
}

/// One closed span within a request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace.
    pub id: u64,
    /// Parent span id (the trace root for top-level stages; 0 for the
    /// root itself when there was no inbound context).
    pub parent: u64,
    /// Stage name (registered in [`crate::names::INSTRUMENTS`]).
    pub name: &'static str,
    /// Start offset in ns since the trace began.
    pub start_ns: u64,
    /// Duration in ns (wall or modelled, per `modelled`).
    pub dur_ns: u64,
    /// Whether the duration is simulator-modelled rather than measured.
    pub modelled: bool,
}

impl SpanRecord {
    fn json(&self) -> String {
        JsonObject::new()
            .u64("id", self.id)
            .u64("parent", self.parent)
            .string("name", self.name)
            .u64("start_ns", self.start_ns)
            .u64("dur_ns", self.dur_ns)
            .string("kind", if self.modelled { "modelled" } else { "wall" })
            .finish()
    }
}

const ROOT_SPAN_ID: u64 = 1;

/// An in-flight request trace, shared by every thread that touches the
/// request. Cheap to clone (`Arc`); spans are appended under a mutex on
/// the cold path only (a handful per request).
#[derive(Debug)]
pub struct RequestTrace {
    trace_id: u64,
    remote_parent: u64,
    root_name: &'static str,
    started: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    attrs: Mutex<Vec<(String, String)>>,
    finished: AtomicBool,
}

impl RequestTrace {
    /// Starts a trace rooted at `root_name`. With an inbound context the
    /// caller's trace id is adopted and the root is parented under the
    /// caller's span; otherwise a fresh trace id is allocated.
    pub fn begin(root_name: &'static str, inbound: Option<TraceContext>) -> Arc<RequestTrace> {
        let (trace_id, remote_parent) = match inbound {
            Some(ctx) => (ctx.trace_id, ctx.span_id),
            None => (fresh_trace_id(), 0),
        };
        Arc::new(RequestTrace {
            trace_id,
            remote_parent,
            root_name,
            started: Instant::now(),
            next_span: AtomicU64::new(ROOT_SPAN_ID + 1),
            spans: Mutex::new(Vec::new()),
            attrs: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
        })
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The root span id — parent for top-level stage spans.
    pub fn root_span(&self) -> u64 {
        ROOT_SPAN_ID
    }

    /// Context for propagating this trace downstream (children of the
    /// root span).
    pub fn context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: ROOT_SPAN_ID }
    }

    /// Offset of `at` in ns since the trace began (0 if `at` precedes it).
    pub fn offset_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.started).as_nanos() as u64
    }

    /// Current offset in ns since the trace began.
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        self.spans.lock().unwrap_or_else(|p| p.into_inner()).push(record);
    }

    /// Records a closed wall-time span; returns its id (usable as a
    /// parent for sub-spans).
    pub fn record_wall(&self, name: &'static str, parent: u64, start_ns: u64, dur_ns: u64) -> u64 {
        let id = self.alloc_span();
        self.push(SpanRecord { id, parent, name, start_ns, dur_ns, modelled: false });
        id
    }

    /// Records a closed modelled-time span (simulator cost estimates);
    /// returns its id.
    pub fn record_modelled(
        &self,
        name: &'static str,
        parent: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        let id = self.alloc_span();
        self.push(SpanRecord { id, parent, name, start_ns, dur_ns, modelled: true });
        id
    }

    /// Opens a RAII wall span that records itself when dropped.
    pub fn start_wall(self: &Arc<Self>, name: &'static str, parent: u64) -> StageSpan {
        StageSpan { trace: Arc::clone(self), name, parent, opened: Instant::now() }
    }

    /// Attaches a key/value annotation to the trace (backend, job id,
    /// outcome, ...). Later writes with the same key win at render time.
    pub fn annotate(&self, key: &str, value: &str) {
        self.attrs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((key.to_string(), value.to_string()));
    }

    /// Closes the root span at the current instant and publishes the
    /// completed trace to the global [`recorder`]. Idempotent: only the
    /// first call publishes. Returns the root wall duration in ns.
    pub fn finish(&self) -> u64 {
        let wall_ns = self.now_ns();
        if self.finished.swap(true, Ordering::AcqRel) {
            return wall_ns;
        }
        // Publish happens exactly once (the swap above), so the buffers
        // can be moved out instead of cloned; a straggler span recorded
        // after finish lands in the emptied vec and is dropped.
        let mut spans = std::mem::take(&mut *self.spans.lock().unwrap_or_else(|p| p.into_inner()));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let attrs = std::mem::take(&mut *self.attrs.lock().unwrap_or_else(|p| p.into_inner()));
        let completed = CompletedTrace {
            trace_id: self.trace_id,
            root: SpanRecord {
                id: ROOT_SPAN_ID,
                parent: self.remote_parent,
                name: self.root_name,
                start_ns: 0,
                dur_ns: wall_ns,
                modelled: false,
            },
            spans,
            attrs,
        };
        crate::counter!("obs.trace.completed").inc();
        recorder().push(completed);
        wall_ns
    }
}

/// RAII guard for a wall stage span; records on drop.
#[derive(Debug)]
pub struct StageSpan {
    trace: Arc<RequestTrace>,
    name: &'static str,
    parent: u64,
    opened: Instant,
}

impl StageSpan {
    /// Elapsed ns since the span opened (without closing it).
    pub fn elapsed_ns(&self) -> u64 {
        self.opened.elapsed().as_nanos() as u64
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let start_ns = self.trace.offset_of(self.opened);
        self.trace.record_wall(self.name, self.parent, start_ns, self.elapsed_ns());
    }
}

/// A finished trace: the root span plus its stage spans, start-ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Trace id.
    pub trace_id: u64,
    /// The request root span (parent = inbound remote span, or 0).
    pub root: SpanRecord,
    /// Stage spans, sorted by (start_ns, id).
    pub spans: Vec<SpanRecord>,
    /// Annotations; later entries with the same key win.
    pub attrs: Vec<(String, String)>,
}

impl CompletedTrace {
    /// Root wall duration in ns.
    pub fn wall_ns(&self) -> u64 {
        self.root.dur_ns
    }

    /// The trace id in wire form (16-digit lowercase hex).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    fn attrs_json(&self) -> String {
        let mut obj = JsonObject::new();
        // Last write wins: iterate deduped in first-seen key order.
        let mut emitted: Vec<&str> = Vec::new();
        for (key, _) in &self.attrs {
            if emitted.contains(&key.as_str()) {
                continue;
            }
            emitted.push(key);
            if let Some((_, value)) = self.attrs.iter().rev().find(|(k, _)| k == key) {
                obj = obj.string(key, value);
            }
        }
        obj.finish()
    }

    /// Full span-tree JSON for `GET /traces/<id>`.
    pub fn json(&self) -> String {
        let mut spans = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push_str(&s.json());
        }
        spans.push(']');
        JsonObject::new()
            .string("trace", &self.trace_hex())
            .string("name", self.root.name)
            .u64("wall_ns", self.wall_ns())
            .raw("root", &self.root.json())
            .raw("spans", &spans)
            .raw("attrs", &self.attrs_json())
            .finish()
    }

    /// One-line summary JSON for the `GET /traces` index.
    pub fn summary_json(&self) -> String {
        JsonObject::new()
            .string("trace", &self.trace_hex())
            .string("name", self.root.name)
            .u64("wall_ns", self.wall_ns())
            .u64("spans", self.spans.len() as u64)
            .raw("attrs", &self.attrs_json())
            .finish()
    }

    /// Structural audit: every span must reach the root through recorded
    /// parents (no orphans, no cycles), span ids must be unique, and for
    /// every parent the wall-kind children must sum to at most the
    /// parent's duration (modelled spans are exempt — simulated device
    /// time routinely exceeds host wall time).
    pub fn well_formed(&self) -> Result<(), String> {
        let mut ids = vec![self.root.id];
        for s in &self.spans {
            if ids.contains(&s.id) {
                return Err(format!("duplicate span id {}", s.id));
            }
            ids.push(s.id);
        }
        for s in &self.spans {
            // Walk to the root; the hop budget bounds cycles.
            let mut at = s.id;
            let mut hops = 0;
            while at != self.root.id {
                let parent = match self.spans.iter().find(|x| x.id == at) {
                    Some(x) => x.parent,
                    None => return Err(format!("span {} parent chain leaves the trace", s.id)),
                };
                at = parent;
                hops += 1;
                if hops > self.spans.len() + 1 {
                    return Err(format!("span {} parent chain cycles", s.id));
                }
            }
        }
        for parent_id in &ids {
            let parent_dur = if *parent_id == self.root.id {
                self.root.dur_ns
            } else {
                match self.spans.iter().find(|x| x.id == *parent_id) {
                    Some(x) if x.modelled => continue,
                    Some(x) => x.dur_ns,
                    None => continue,
                }
            };
            let child_sum: u64 = self
                .spans
                .iter()
                .filter(|s| s.parent == *parent_id && !s.modelled)
                .map(|s| s.dur_ns)
                .sum();
            if child_sum > parent_dur {
                return Err(format!(
                    "wall children of span {parent_id} sum to {child_sum} ns > parent \
                     {parent_dur} ns"
                ));
            }
        }
        Ok(())
    }
}

/// Bounded ring buffer of the most recent completed traces.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

#[derive(Debug)]
struct RecorderInner {
    buf: VecDeque<CompletedTrace>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` traces (0 disables capture).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder { inner: Mutex::new(RecorderInner { buf: VecDeque::new(), capacity }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Reconfigures the capacity, trimming oldest traces if shrinking.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        while inner.buf.len() > capacity {
            inner.buf.pop_front();
            crate::counter!("obs.trace.dropped").inc();
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether no traces are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a completed trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: CompletedTrace) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            crate::counter!("obs.trace.dropped").inc();
            return;
        }
        inner.buf.push_back(trace);
        while inner.buf.len() > inner.capacity {
            inner.buf.pop_front();
            crate::counter!("obs.trace.dropped").inc();
        }
    }

    /// The most recent `limit` traces, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<CompletedTrace> {
        let inner = self.lock();
        let skip = inner.buf.len().saturating_sub(limit);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Looks up a trace by id (most recent wins on id reuse).
    pub fn get(&self, trace_id: u64) -> Option<CompletedTrace> {
        let inner = self.lock();
        inner.buf.iter().rev().find(|t| t.trace_id == trace_id).cloned()
    }
}

/// The process-global flight recorder (default capacity 256; the serve
/// daemon reconfigures it from `ServeConfig`).
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(256))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_and_rejects_junk() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, span_id: 7 };
        assert_eq!(TraceContext::parse(&ctx.header_value()), Some(ctx));
        assert_eq!(ctx.header_value(), "00000000deadbeef-0000000000000007");
        for bad in ["", "xyz", "0000000000000001", "1-2", &"0".repeat(33)] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
        // Zero trace id is reserved.
        assert_eq!(TraceContext::parse("0000000000000000-0000000000000001"), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = fresh_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn spans_accumulate_and_finish_publishes_once() {
        let trace = RequestTrace::begin("serve.request", None);
        let root = trace.root_span();
        let kernel = trace.record_wall("serve.kernel", root, 10, 100);
        trace.record_modelled("serve.transfer", kernel, 10, 1_000_000);
        trace.annotate("backend", "cpu");
        trace.annotate("backend", "gpu"); // last write wins
        let wall = trace.finish();
        let again = trace.finish();
        assert!(again >= wall);

        let got = recorder().get(trace.trace_id()).expect("published");
        assert_eq!(got.spans.len(), 2);
        assert_eq!(got.root.name, "serve.request");
        got.well_formed().expect("well formed");
        let rendered = got.json();
        let v = crate::parse_json(&rendered).expect("trace json parses");
        assert_eq!(v.get("attrs").unwrap().get("backend").unwrap().as_str(), Some("gpu"));
        assert_eq!(v.get("spans").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn inbound_context_is_adopted() {
        let ctx = TraceContext { trace_id: 42, span_id: 9 };
        let trace = RequestTrace::begin("serve.request", Some(ctx));
        assert_eq!(trace.trace_id(), 42);
        trace.finish();
        let got = recorder().get(42).expect("published");
        assert_eq!(got.root.parent, 9);
    }

    #[test]
    fn well_formed_rejects_orphans_and_overflow() {
        let root =
            SpanRecord { id: 1, parent: 0, name: "r", start_ns: 0, dur_ns: 100, modelled: false };
        let orphan = CompletedTrace {
            trace_id: 1,
            root: root.clone(),
            spans: vec![SpanRecord {
                id: 2,
                parent: 99,
                name: "x",
                start_ns: 0,
                dur_ns: 1,
                modelled: false,
            }],
            attrs: vec![],
        };
        assert!(orphan.well_formed().is_err());

        let overflow = CompletedTrace {
            trace_id: 2,
            root: root.clone(),
            spans: vec![
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "a",
                    start_ns: 0,
                    dur_ns: 80,
                    modelled: false,
                },
                SpanRecord {
                    id: 3,
                    parent: 1,
                    name: "b",
                    start_ns: 80,
                    dur_ns: 40,
                    modelled: false,
                },
            ],
            attrs: vec![],
        };
        assert!(overflow.well_formed().is_err());

        // The same overflow as modelled time is fine.
        let modelled = CompletedTrace {
            trace_id: 3,
            root,
            spans: vec![SpanRecord {
                id: 2,
                parent: 1,
                name: "m",
                start_ns: 0,
                dur_ns: 10_000,
                modelled: true,
            }],
            attrs: vec![],
        };
        modelled.well_formed().expect("modelled spans exempt from containment");
    }

    #[test]
    fn recorder_ring_evicts_oldest() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 1..=5u64 {
            rec.push(CompletedTrace {
                trace_id: i,
                root: SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "r",
                    start_ns: 0,
                    dur_ns: i,
                    modelled: false,
                },
                spans: vec![],
                attrs: vec![],
            });
        }
        assert_eq!(rec.len(), 3);
        assert!(rec.get(1).is_none());
        assert!(rec.get(2).is_none());
        let recent = rec.recent(10);
        let ids: Vec<u64> = recent.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [3, 4, 5]);
        assert_eq!(rec.recent(2).len(), 2);
        rec.set_capacity(1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.recent(10)[0].trace_id, 5);
    }
}
