//! The flight recorder's ring buffer must never exceed its configured
//! capacity, even while many threads complete traces concurrently and
//! readers snapshot mid-stream.

use std::sync::Arc;

use omega_obs::trace::FlightRecorder;
use omega_obs::{CompletedTrace, SpanRecord};

fn trace(id: u64) -> CompletedTrace {
    CompletedTrace {
        trace_id: id,
        root: SpanRecord {
            id: 1,
            parent: 0,
            name: "serve.request",
            start_ns: 0,
            dur_ns: id,
            modelled: false,
        },
        spans: Vec::new(),
        attrs: Vec::new(),
    }
}

#[test]
fn ring_never_exceeds_capacity_under_concurrent_completion() {
    const CAPACITY: usize = 32;
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 500;

    let rec = Arc::new(FlightRecorder::with_capacity(CAPACITY));
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    rec.push(trace(w * PER_WRITER + i + 1));
                }
            });
        }
        // Concurrent readers observe the bound at every snapshot.
        for _ in 0..2 {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for _ in 0..5_000 {
                    let len = rec.len();
                    assert!(len <= CAPACITY, "recorder held {len} > capacity {CAPACITY}");
                    assert!(rec.recent(usize::MAX).len() <= CAPACITY);
                }
            });
        }
    });

    assert_eq!(rec.len(), CAPACITY, "ends exactly full after 4000 pushes");
    // The survivors are real pushed traces and lookups still work.
    let recent = rec.recent(usize::MAX);
    assert_eq!(recent.len(), CAPACITY);
    for t in &recent {
        assert!(rec.get(t.trace_id).is_some());
    }
}

#[test]
fn shrinking_capacity_mid_flight_trims_and_holds() {
    let rec = Arc::new(FlightRecorder::with_capacity(64));
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..200 {
                    rec.push(trace(w * 1000 + i + 1));
                }
            });
        }
        let rec = Arc::clone(&rec);
        s.spawn(move || {
            for cap in [64usize, 16, 8, 24] {
                rec.set_capacity(cap);
                assert!(rec.len() <= 64);
                std::thread::yield_now();
            }
        });
    });
    assert!(rec.len() <= rec.capacity());
}

#[test]
fn zero_capacity_disables_capture() {
    let rec = FlightRecorder::with_capacity(0);
    rec.push(trace(1));
    assert!(rec.is_empty());
    assert!(rec.get(1).is_none());
}
