//! Property tests for the Prometheus text exposition: whatever the
//! registry holds — including hostile instrument names — the rendered
//! document must parse cleanly, never contain a NaN sample, and always
//! escape label values.

use omega_obs::expo::{escape_label_value, render_prometheus};
use omega_obs::{parse_prometheus, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use proptest::TestCaseError;

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (proptest::collection::vec(0u64..1_000_000, HISTOGRAM_BUCKETS), 0u64..u64::MAX / 2).prop_map(
        |(counts, sum)| {
            let mut h = HistogramSnapshot { counts: [0; HISTOGRAM_BUCKETS], sum };
            h.counts.copy_from_slice(&counts);
            h
        },
    )
}

/// Strings over a deliberately hostile alphabet: control characters
/// (including newline), quotes, backslashes, spaces, braces, and
/// non-ASCII codepoints — everything the renderer must sanitize — with a
/// chance of a trailing backend suffix the renderer lifts into a label.
fn arb_name() -> impl Strategy<Value = String> {
    (proptest::collection::vec(0u32..0x300, 0usize..25), 0u8..4).prop_map(|(codes, suffix)| {
        let mut name: String = codes.into_iter().filter_map(char::from_u32).collect();
        name.push_str(match suffix {
            1 => ".cpu",
            2 => ".gpu",
            3 => ".fpga",
            _ => "",
        });
        name
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exposition_always_parses_and_never_emits_nan(
        counters in proptest::collection::vec((arb_name(), 0u64..u64::MAX), 0usize..8),
        gauges in proptest::collection::vec((arb_name(), i64::MIN..i64::MAX), 0usize..8),
        histograms in proptest::collection::vec((arb_name(), arb_histogram()), 0usize..4),
    ) {
        let snap = MetricsSnapshot { counters, gauges, histograms };
        let text = render_prometheus(&snap);
        let samples = match parse_prometheus(&text) {
            Ok(n) => n,
            Err(e) => {
                return Err(TestCaseError::Fail(format!("{e}\n--- document ---\n{text}")));
            }
        };
        // Every histogram series contributes its buckets plus _sum and
        // _count (families can merge, so this is a lower bound).
        prop_assert!(samples >= snap.histograms.len() * (HISTOGRAM_BUCKETS + 2));
        prop_assert!(!text.contains("NaN"), "NaN leaked into exposition:\n{text}");
    }

    #[test]
    fn label_values_escape_and_round_trip(
        codes in proptest::collection::vec(0u32..0x300, 0usize..40),
    ) {
        let value: String = codes.into_iter().filter_map(char::from_u32).collect();
        let escaped = escape_label_value(&value);
        // No raw newlines, unescaped quotes, or dangling backslashes.
        prop_assert!(!escaped.contains('\n'), "raw newline survived escaping");
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                return Err(TestCaseError::Fail("unescaped quote".to_string()));
            }
            if c == '\\' {
                let next = chars.next();
                prop_assert!(
                    matches!(next, Some('\\' | '"' | 'n')),
                    "dangling backslash escape: {next:?}"
                );
            }
        }
        // A synthetic sample line built with the escaped value parses.
        let line = format!("m{{label=\"{escaped}\"}} 1\n");
        prop_assert!(parse_prometheus(&line).is_ok(), "line rejected: {line:?}");
    }
}
