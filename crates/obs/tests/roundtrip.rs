//! End-to-end trace round-trip: run a GPU-backend detection with the JSONL
//! sink installed, parse the trace back, and check span nesting plus
//! counter totals against the detector's own `ScanStats`.
//!
//! This file intentionally holds a single `#[test]`: the sink and the
//! metrics registry are process-global, so a second test in the same
//! binary would race the installation or pollute the counters.

use omega_accel::{Backend, SweepDetector};
use omega_core::ScanParams;
use omega_genome::{Alignment, SnpVec};
use omega_gpu_sim::GpuDevice;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_alignment(n_sites: usize, n_samples: usize, seed: u64) -> Alignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<SnpVec> = (0..n_sites)
        .map(|_| loop {
            let calls: Vec<u8> = (0..n_samples).map(|_| rng.gen_range(0..2)).collect();
            let s = SnpVec::from_bits(&calls);
            if !s.is_monomorphic() {
                break s;
            }
        })
        .collect();
    let positions: Vec<u64> = (0..n_sites as u64).map(|i| 50 * (i + 1)).collect();
    Alignment::new(positions, sites, 50 * n_sites as u64 + 50).unwrap()
}

#[test]
fn gpu_detection_trace_roundtrips() {
    let path = std::env::temp_dir().join("omega_obs_roundtrip.jsonl");
    omega_obs::install_jsonl(&path).unwrap();

    let alignment = random_alignment(60, 24, 11);
    let params =
        ScanParams { grid: 12, min_win: 0, max_win: 2_000, min_snps_per_side: 2, threads: 1 };
    let detector = SweepDetector::new(params, Backend::Gpu(GpuDevice::tesla_k80())).unwrap();
    let outcome = detector.detect(&alignment);

    omega_obs::emit_metrics_snapshot(&omega_obs::snapshot());
    omega_obs::uninstall().unwrap();

    let events = omega_obs::read_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let spans: Vec<&omega_obs::SpanEvent> = events
        .iter()
        .filter_map(|e| match e {
            omega_obs::TraceEvent::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    let metrics: Vec<&omega_obs::MetricsEvent> = events
        .iter()
        .filter_map(|e| match e {
            omega_obs::TraceEvent::Metrics(m) => Some(m),
            _ => None,
        })
        .collect();

    // Spans from all three layers a GPU run exercises.
    for name in ["accel.detect", "accel.position", "matrix.advance", "omega.kernel", "gpu.estimate"]
    {
        assert!(spans.iter().any(|s| s.name == name), "missing span '{name}'");
    }

    // Nesting: depth 0 spans are parentless, deeper spans name their
    // enclosing span, and the specific parent/child pairs this run
    // produces hold exactly.
    for s in &spans {
        assert_eq!(s.depth == 0, s.parent.is_none(), "span {:?}", s);
        assert!(s.dur_ns <= s.start_ns + s.dur_ns, "duration sane for {:?}", s);
    }
    for s in spans.iter().filter(|s| s.name == "accel.position") {
        assert_eq!(s.parent.as_deref(), Some("accel.detect"));
        assert_eq!(s.depth, 1);
    }
    for s in spans.iter().filter(|s| s.name == "matrix.advance" || s.name == "omega.kernel") {
        assert_eq!(s.parent.as_deref(), Some("accel.position"), "span {:?}", s);
        assert_eq!(s.depth, 2);
    }
    // Span close events stream in close order, so every accel.position
    // close precedes its parent accel.detect close.
    let detect_idx = spans.iter().position(|s| s.name == "accel.detect").unwrap();
    assert!(spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "accel.position")
        .all(|(i, _)| i < detect_idx));

    // Counter totals in the final snapshot match the detector's stats.
    let snap = &metrics.last().expect("one metrics event").snapshot;
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter '{name}'"))
    };
    assert_eq!(counter("omega.evaluations"), outcome.stats.omega_evaluations);
    // The vectorized kernel evaluates every combination lane-wise, so its
    // lane counter covers the full evaluation count.
    assert_eq!(counter("omega.kernel_lanes"), outcome.stats.omega_evaluations);
    assert_eq!(counter("matrix.r2_pairs"), outcome.stats.r2_pairs);
    assert_eq!(counter("matrix.cells_reused"), outcome.stats.cells_reused);
    assert_eq!(counter("accel.detect.positions"), outcome.stats.positions as u64);
    assert_eq!(counter("accel.detect.runs"), 1);

    // The acceptance bar: at least 8 distinct metric names in one run.
    let distinct = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
    assert!(distinct >= 8, "only {distinct} metric names");

    // One accel.position span per grid position, and one matrix.advance
    // per *scorable* position (unscorable ones never touch the matrix).
    assert_eq!(
        spans.iter().filter(|s| s.name == "accel.position").count(),
        outcome.stats.positions
    );
    assert_eq!(
        spans.iter().filter(|s| s.name == "matrix.advance").count(),
        outcome.stats.scorable_positions
    );
}
