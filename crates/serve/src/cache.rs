//! Content-addressed result cache with LRU eviction under a byte budget.
//!
//! Keys are *content* addresses: the FNV-1a digest of the request payload
//! plus the exact scan parameters, backend, and overlap mode — everything
//! that influences the (deterministic) result bytes. Because scans are
//! bit-identical for identical inputs, a hit can be served verbatim
//! without touching a detector.
//!
//! The cache is budgeted in bytes, not entries: result JSON for a large
//! grid dwarfs one for a small grid, so an entry count would let memory
//! use drift unbounded. Eviction is least-recently-used; insertion of a
//! value larger than the whole budget is refused rather than evicting
//! everything. Hits, misses, and evictions feed the
//! `serve.cache_hits` / `serve.cache_misses` / `serve.cache_evictions`
//! counters.
//!
//! With a [`crate::store::ResultStore`] attached (`-data-dir`), the
//! cache becomes the memory tier of a two-tier design: inserts write
//! through to disk, a memory miss falls through to a verified disk read
//! (promoting the entry back into memory), and
//! [`ResultCache::rehydrate`] warms the memory tier from disk at boot.
//! Eviction then only sheds the memory copy — the result is still one
//! disk read away, not a detector run away.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use omega_accel::ShardSpec;
use omega_core::ScanParams;
use omega_gpu_sim::OverlapMode;

use crate::store::ResultStore;

/// Everything that determines the bytes of a scan result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a 64 digest over (format, region length, payload bytes).
    pub payload_digest: u64,
    /// Exact scan parameters.
    pub params: ScanParams,
    /// Backend label, including the device name (e.g. "GPU (Tesla K80)").
    pub backend: String,
    /// Whether transfers were overlapped (affects timing metadata only,
    /// but keyed anyway so `/stats` timing figures stay attributable).
    pub overlapped: bool,
    /// Cluster shard geometry: a shard result covers only a slice of the
    /// global grid, so it must never answer a whole-scan lookup (or a
    /// different slice) with the same payload.
    pub shard: Option<ShardSpec>,
}

impl CacheKey {
    /// Builds a key from the request facets.
    pub fn new(
        payload_digest: u64,
        params: ScanParams,
        backend: String,
        overlap: OverlapMode,
        shard: Option<ShardSpec>,
    ) -> Self {
        CacheKey {
            payload_digest,
            params,
            backend,
            overlapped: overlap == OverlapMode::DoubleBuffered,
            shard,
        }
    }

    /// Bytes this key contributes to the budget (struct + string heap).
    fn cost(&self) -> usize {
        std::mem::size_of::<CacheKey>() + self.backend.len()
    }
}

#[derive(Debug)]
struct Entry {
    value: Arc<String>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// Point-in-time cache occupancy figures for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Bytes currently held (values + key overhead).
    pub bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
    /// Resident entries.
    pub entries: usize,
}

/// The shared cache. Cheap to clone handles via `Arc` at the call site;
/// internally one mutex (the hot path is a hash lookup + counter bump,
/// far from contention at the request rates one daemon sees).
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    store: Option<Arc<ResultStore>>,
}

impl ResultCache {
    /// A cache holding at most `capacity_bytes` of results.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        ResultCache { inner: Mutex::new(Inner::default()), capacity_bytes, store: None }
    }

    /// A cache backed by a disk store: inserts write through, memory
    /// misses fall through to verified disk reads.
    pub fn with_store(capacity_bytes: usize, store: Arc<ResultStore>) -> Self {
        ResultCache { inner: Mutex::new(Inner::default()), capacity_bytes, store: Some(store) }
    }

    /// The attached disk store, if any.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Warms the memory tier from the disk store, newest entries first
    /// (they get the freshest recency, so budget pressure evicts the
    /// oldest rehydrated results first). Returns how many entries were
    /// loaded into memory.
    pub fn rehydrate(&self) -> usize {
        let Some(store) = &self.store else { return 0 };
        let mut picked = Vec::new();
        let mut budget = self.capacity_bytes;
        for entry in store.entries() {
            let cost = entry.key.cost() + entry.value.len();
            if cost > budget {
                continue;
            }
            budget -= cost;
            picked.push(entry);
        }
        let loaded = picked.len();
        // Insert oldest-first so newest entries end most recently used.
        for entry in picked.into_iter().rev() {
            self.insert_memory(entry.key, entry.value);
        }
        omega_obs::counter!("serve.store_rehydrated").add(loaded as u64);
        loaded
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a panic elsewhere; the map itself is
        // still structurally sound, so serving stale-but-valid results
        // beats taking the daemon down.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up `key`, bumping its recency. A memory miss falls through
    /// to the disk store (when attached); a verified disk read counts as
    /// a cache hit and promotes the entry back into memory. Counts a hit
    /// or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                omega_obs::counter!("serve.cache_hits").inc();
                return Some(Arc::clone(&entry.value));
            }
        }
        // Disk fall-through happens outside the lock: a slow read must
        // not serialise unrelated lookups.
        if let Some(store) = &self.store {
            if let Some(value) = store.read(key) {
                self.insert_memory(key.clone(), Arc::clone(&value));
                omega_obs::counter!("serve.cache_hits").inc();
                return Some(value);
            }
        }
        omega_obs::counter!("serve.cache_misses").inc();
        None
    }

    /// Inserts `value` under `key`, evicting least-recently-used entries
    /// until the budget holds. A value that alone exceeds the budget is
    /// not inserted (the cache never overcommits). Re-inserting an
    /// existing key replaces the value. With a store attached, the value
    /// is written through to disk first (even budget-refused values: the
    /// disk tier has no byte budget, so oversized results survive there).
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        if let Some(store) = &self.store {
            store.write(&key, &value);
        }
        self.insert_memory(key, value);
    }

    /// Memory-tier insert (no write-through; rehydration and disk
    /// promotion land here).
    fn insert_memory(&self, key: CacheKey, value: Arc<String>) {
        let cost = key.cost() + value.len();
        if cost > self.capacity_bytes {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + cost > self.capacity_bytes {
            let Some(lru_key) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&lru_key) {
                inner.bytes -= evicted.bytes;
                omega_obs::counter!("serve.cache_evictions").inc();
            }
        }
        inner.bytes += cost;
        inner.map.insert(key, Entry { value, bytes: cost, last_used: tick });
    }

    /// Current occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(digest: u64) -> CacheKey {
        CacheKey::new(digest, ScanParams::default(), "CPU".into(), OverlapMode::Serialized, None)
    }

    fn val(len: usize) -> Arc<String> {
        Arc::new("x".repeat(len))
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = ResultCache::with_capacity(4096);
        let v = val(10);
        cache.insert(key(1), Arc::clone(&v));
        let got = cache.get(&key(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &v));
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let overhead = key(0).cost();
        // Room for exactly two entries of 100 bytes each.
        let cache = ResultCache::with_capacity(2 * (overhead + 100));
        cache.insert(key(1), val(100));
        cache.insert(key(2), val(100));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), val(100));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn oversized_value_is_refused() {
        let cache = ResultCache::with_capacity(64);
        cache.insert(key(1), val(1000));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = ResultCache::with_capacity(4096);
        cache.insert(key(1), val(100));
        let b1 = cache.stats().bytes;
        cache.insert(key(1), val(100));
        assert_eq!(cache.stats().bytes, b1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn distinct_params_are_distinct_keys() {
        let cache = ResultCache::with_capacity(4096);
        cache.insert(key(1), val(10));
        let other = CacheKey::new(
            1,
            ScanParams { grid: 7, ..ScanParams::default() },
            "CPU".into(),
            OverlapMode::Serialized,
            None,
        );
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn shard_slices_are_distinct_keys() {
        let cache = ResultCache::with_capacity(4096);
        cache.insert(key(1), val(10));
        let spec = ShardSpec { first_bp: 10, last_bp: 900, grid: 16, lo: 0, hi: 8 };
        let sharded = CacheKey { shard: Some(spec), ..key(1) };
        assert!(cache.get(&sharded).is_none(), "whole-scan entry must not answer a shard");
        cache.insert(sharded.clone(), val(5));
        let other_slice = CacheKey { shard: Some(ShardSpec { lo: 8, hi: 16, ..spec }), ..key(1) };
        assert!(cache.get(&other_slice).is_none(), "slices must not cross-answer");
        assert!(cache.get(&sharded).is_some());
    }
}
