//! Content digests for the result cache.
//!
//! Cache keys must identify request *content*, not request identity, so
//! the same replicate uploaded twice hashes to the same key. FNV-1a is
//! used because it is tiny, dependency-free, and deterministic across
//! platforms; the cache key additionally carries the scan parameters and
//! backend verbatim, so a 64-bit digest only has to separate payloads.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest of a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"split ").update(b"input");
        assert_eq!(h.finish(), fnv64(b"split input"));
    }

    #[test]
    fn distinct_payloads_diverge() {
        assert_ne!(fnv64(b"replicate 1"), fnv64(b"replicate 2"));
    }
}
