//! Minimal HTTP/1.1 over `std::net`: exactly what the daemon needs, and
//! nothing the offline vendor policy would have to grow for.
//!
//! Supported: one request per connection (`Connection: close`
//! semantics), `Content-Length` bodies, header and body size limits
//! enforced *before* buffering. Unsupported (rejected with 4xx/501, not
//! panics): chunked transfer encoding, multiline headers, pipelining.
//! Parsing is deliberately strict — this daemon sits behind trusted
//! infrastructure, and a strict parser is a smaller attack surface than
//! a lenient one.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token.
    pub method: String,
    /// Path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Raw `X-Omega-Trace` header value, if the caller sent one.
    pub trace_header: Option<String>,
}

/// Why a request could not be read. Each maps to one response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken request (status 400).
    BadRequest(String),
    /// Headers exceeded [`MAX_HEAD_BYTES`] (status 431).
    HeadersTooLarge,
    /// Body exceeded the configured limit (status 413).
    BodyTooLarge {
        /// The configured cap the declared length exceeded.
        limit: usize,
    },
    /// Declared `Transfer-Encoding` we do not implement (status 501).
    UnsupportedTransferEncoding,
    /// Socket-level failure mid-request (connection is dropped).
    Io(String),
}

impl HttpError {
    /// The response status line for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            HttpError::Io(_) => (400, "Bad Request"),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::HeadersTooLarge => format!("headers exceed {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { limit } => format!("body exceeds {limit} bytes"),
            HttpError::UnsupportedTransferEncoding => {
                "only Content-Length bodies are supported".to_string()
            }
            HttpError::Io(m) => m.clone(),
        }
    }
}

/// Reads one request off `stream`. `Ok(None)` means the peer closed
/// before sending anything (a clean no-op).
pub fn read_request(
    stream: &mut TcpStream,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; bounded so a hostile peer
    // cannot balloon the buffer.
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("connection closed mid-headers".into()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 headers".into()))?;
    let mut lines = head_text.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("target must be absolute, got {target:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut trace_header = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
            }
            "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                return Err(HttpError::UnsupportedTransferEncoding);
            }
            "x-omega-trace" => trace_header = Some(value.to_string()),
            _ => {}
        }
    }
    // The limit gates on the *declared* length, before any buffering.
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge { limit: max_body_bytes });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| HttpError::Io(e.to_string()))?;
    Ok(Some(Request { method, path, body, trace_header }))
}

/// Writes one response and flushes. Always closes after (the daemon
/// speaks `Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw client bytes via a loopback pair.
    fn parse_raw(input: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let input = input.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&input).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let out = read_request(&mut server_side, max_body);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.body, b"abcd");
        assert!(req.trace_header.is_none());
    }

    #[test]
    fn trace_header_is_captured_case_insensitively() {
        let raw =
            b"GET /stats HTTP/1.1\r\nx-OMEGA-trace: 00000000deadbeef-0000000000000001\r\n\r\n";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.trace_header.as_deref(), Some("00000000deadbeef-0000000000000001"));
    }

    #[test]
    fn strips_query_and_handles_bare_lf() {
        let raw = b"GET /stats?pretty=1 HTTP/1.1\n\n";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(parse_raw(b"TOTAL GARBAGE\r\n\r\n", 1024), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_raw(b"GET noslash HTTP/1.1\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_read() {
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(parse_raw(raw, 64).unwrap_err(), HttpError::BodyTooLarge { limit: 64 });
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_raw(&raw, 1024).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn chunked_encoding_is_rejected_as_unimplemented() {
        let raw = b"POST /scan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse_raw(raw, 1024).unwrap_err(), HttpError::UnsupportedTransferEncoding);
        assert_eq!(HttpError::UnsupportedTransferEncoding.status().0, 501);
    }

    #[test]
    fn empty_connection_is_a_clean_none() {
        assert!(parse_raw(b"", 1024).unwrap().is_none());
    }
}
