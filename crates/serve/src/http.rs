//! Minimal HTTP/1.1 over `std::net`: exactly what the daemon needs, and
//! nothing the offline vendor policy would have to grow for.
//!
//! Supported: persistent connections ([`HttpConn`] reads many requests
//! off one socket; HTTP/1.1 defaults to keep-alive, `Connection: close`
//! and HTTP/1.0 opt out), `Content-Length` bodies, chunked
//! transfer-encoding on *responses* (large bodies stream in chunks
//! instead of one contiguous buffer), and header/body size limits
//! enforced *before* buffering. Unsupported (rejected with 4xx/501, not
//! panics): chunked request bodies, multiline headers, request
//! pipelining beyond strict request-response turns. Parsing is
//! deliberately strict — this daemon sits behind trusted
//! infrastructure, and a strict parser is a smaller attack surface than
//! a lenient one. In particular, conflicting duplicate `Content-Length`
//! headers are rejected outright: with keep-alive enabled, a parser
//! that silently picks one of two lengths is a request-smuggling
//! primitive.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Response bodies at or above this size are sent with
/// `Transfer-Encoding: chunked` (when the request allows it) in
/// [`CHUNK_BYTES`] pieces, so a large per-replicate report streams to
/// the peer without one contiguous header+body allocation.
pub const CHUNKED_THRESHOLD_BYTES: usize = 32 * 1024;

/// Chunk size for chunked responses.
pub const CHUNK_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token.
    pub method: String,
    /// Path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Raw `X-Omega-Trace` header value, if the caller sent one.
    pub trace_header: Option<String>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default; `Connection: close` or HTTP/1.0 without
    /// `Connection: keep-alive` opt out).
    pub keep_alive: bool,
    /// Whether the request was HTTP/1.1 (chunked responses are legal).
    pub http11: bool,
}

/// Why a request could not be read. Each maps to one response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken request (status 400).
    BadRequest(String),
    /// Headers exceeded [`MAX_HEAD_BYTES`] (status 431).
    HeadersTooLarge,
    /// Body exceeded the configured limit (status 413).
    BodyTooLarge {
        /// The configured cap the declared length exceeded.
        limit: usize,
    },
    /// Declared `Transfer-Encoding` we do not implement (status 501).
    UnsupportedTransferEncoding,
    /// Socket-level failure mid-request (connection is dropped).
    Io(String),
}

impl HttpError {
    /// The response status line for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            HttpError::Io(_) => (400, "Bad Request"),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::HeadersTooLarge => format!("headers exceed {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { limit } => format!("body exceeds {limit} bytes"),
            HttpError::UnsupportedTransferEncoding => {
                "only Content-Length bodies are supported".to_string()
            }
            HttpError::Io(m) => m.clone(),
        }
    }
}

/// One server-side connection: a buffered reader that persists across
/// requests, so bytes the kernel delivered after one request's body
/// (the start of the next pipelined/keep-alive request) are not lost
/// between reads.
#[derive(Debug)]
pub struct HttpConn {
    reader: BufReader<TcpStream>,
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> HttpConn {
        HttpConn { reader: BufReader::new(stream) }
    }

    /// The underlying stream, for writing responses.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// Reads one request. `Ok(None)` means the peer closed between
    /// requests (a clean end of the connection).
    pub fn read_request(&mut self, max_body_bytes: usize) -> Result<Option<Request>, HttpError> {
        read_from(&mut self.reader, max_body_bytes)
    }
}

fn read_from<R: Read>(reader: &mut R, max_body_bytes: usize) -> Result<Option<Request>, HttpError> {
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; bounded so a hostile peer
    // cannot balloon the buffer. (Byte-wise over the connection's
    // BufReader, so it never consumes bytes past the request head.)
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("connection closed mid-headers".into()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => {
                if head.is_empty() {
                    // An idle keep-alive connection timing out between
                    // requests is a clean close, not an error.
                    return Ok(None);
                }
                return Err(HttpError::Io(e.to_string()));
            }
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 headers".into()))?;
    let mut lines = head_text.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("target must be absolute, got {target:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let http11 = version == "HTTP/1.1";

    let mut content_length: Option<usize> = None;
    let mut trace_header = None;
    let mut connection_token: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
                // Duplicate headers: identical repeats are tolerated
                // (RFC 9112 §6.3), conflicting ones are the
                // request-smuggling shape and must die here.
                match content_length {
                    Some(prev) if prev != parsed => {
                        return Err(HttpError::BadRequest(format!(
                            "conflicting Content-Length headers ({prev} then {parsed})"
                        )));
                    }
                    _ => content_length = Some(parsed),
                }
            }
            "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                return Err(HttpError::UnsupportedTransferEncoding);
            }
            "connection" => connection_token = Some(value.to_ascii_lowercase()),
            "x-omega-trace" => trace_header = Some(value.to_string()),
            _ => {}
        }
    }
    let keep_alive = match connection_token.as_deref() {
        Some(token) if token.split(',').any(|t| t.trim() == "close") => false,
        Some(token) if token.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => http11,
    };
    let content_length = content_length.unwrap_or(0);
    // The limit gates on the *declared* length, before any buffering.
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge { limit: max_body_bytes });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| HttpError::Io(e.to_string()))?;
    Ok(Some(Request { method, path, body, trace_header, keep_alive, http11 }))
}

fn head_block(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> String {
    let mut out = format!("HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n");
    out.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out
}

/// Writes one `Content-Length` response and flushes. `keep_alive`
/// controls the `Connection` header — the caller owns the decision to
/// read another request or drop the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = head_block(status, reason, content_type, extra_headers, keep_alive);
    out.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(out.as_bytes())?;
    // The body is written directly from its own buffer — for cached
    // results that is the cache's `Arc<String>` bytes, never a copy
    // concatenated into the header allocation.
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one response with `Transfer-Encoding: chunked`, streaming
/// `body` in [`CHUNK_BYTES`] pieces. Used for large bodies so a
/// multi-megabyte per-replicate report goes out as it is walked, not
/// as one contiguous serialised buffer.
pub fn write_chunked_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = head_block(status, reason, content_type, extra_headers, keep_alive);
    out.push_str("Transfer-Encoding: chunked\r\n\r\n");
    stream.write_all(out.as_bytes())?;
    for chunk in body.as_bytes().chunks(CHUNK_BYTES) {
        write!(stream, "{:x}\r\n", chunk.len())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw client bytes via a loopback pair.
    fn parse_raw(input: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let input = input.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&input).unwrap();
        });
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = HttpConn::new(server_side);
        let out = conn.read_request(max_body);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.body, b"abcd");
        assert!(req.trace_header.is_none());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.http11);
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse_raw(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse_raw(b"GET / HTTP/1.0\r\n\r\n", 64).unwrap().unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        assert!(!req.http11);
        let req =
            parse_raw(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64).unwrap().unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd";
        match parse_raw(raw, 1024) {
            Err(HttpError::BadRequest(m)) => assert!(m.contains("conflicting"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // Identical duplicates are tolerated (RFC 9112 §6.3).
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn keep_alive_reads_two_requests_off_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi").unwrap();
            s.write_all(b"GET /b HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        });
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = HttpConn::new(server_side);
        let first = conn.read_request(1024).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let second = conn.read_request(1024).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert!(conn.read_request(1024).unwrap().is_none(), "peer closed");
        client.join().unwrap();
    }

    #[test]
    fn trace_header_is_captured_case_insensitively() {
        let raw =
            b"GET /stats HTTP/1.1\r\nx-OMEGA-trace: 00000000deadbeef-0000000000000001\r\n\r\n";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.trace_header.as_deref(), Some("00000000deadbeef-0000000000000001"));
    }

    #[test]
    fn strips_query_and_handles_bare_lf() {
        let raw = b"GET /stats?pretty=1 HTTP/1.1\n\n";
        let req = parse_raw(raw, 1024).unwrap().unwrap();
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(parse_raw(b"TOTAL GARBAGE\r\n\r\n", 1024), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_raw(b"GET noslash HTTP/1.1\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_read() {
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(parse_raw(raw, 64).unwrap_err(), HttpError::BodyTooLarge { limit: 64 });
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_raw(&raw, 1024).unwrap_err(), HttpError::HeadersTooLarge);
    }

    #[test]
    fn chunked_request_encoding_is_rejected_as_unimplemented() {
        let raw = b"POST /scan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse_raw(raw, 1024).unwrap_err(), HttpError::UnsupportedTransferEncoding);
        assert_eq!(HttpError::UnsupportedTransferEncoding.status().0, 501);
    }

    #[test]
    fn empty_connection_is_a_clean_none() {
        assert!(parse_raw(b"", 1024).unwrap().is_none());
    }

    #[test]
    fn chunked_response_roundtrips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let body: String = "x".repeat(CHUNK_BYTES * 2 + 100);
        let expect = body.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut stream = stream;
            write_chunked_response(&mut stream, 200, "OK", "application/json", &[], &body, false)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        server.join().unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        let after = &text[text.find("\r\n\r\n").unwrap() + 4..];
        // Decode the chunked framing.
        let mut decoded = String::new();
        let mut rest = after;
        loop {
            let nl = rest.find("\r\n").unwrap();
            let len = usize::from_str_radix(&rest[..nl], 16).unwrap();
            rest = &rest[nl + 2..];
            if len == 0 {
                break;
            }
            decoded.push_str(&rest[..len]);
            rest = &rest[len + 2..];
        }
        assert_eq!(decoded, expect);
    }
}
