//! Scan jobs: request parsing/validation, the job table, and result
//! serialisation.
//!
//! A `POST /scan` body is parsed into a [`ScanRequest`] *at admission*:
//! the payload is decoded into alignments and the parameters validated
//! before the job ever enters a queue, so malformed input costs one
//! parse, not a detector slot. The functional part of a result is
//! serialised by [`result_json`] into deterministic bytes — two runs of
//! the same input produce identical JSON, which is what makes the
//! content-addressed cache sound (and lets tests assert bit-identity
//! against a direct [`omega_accel::BatchDetector`] run). Timing is kept
//! in a separate, non-deterministic member.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use omega_accel::{AutoLane, Backend, BatchOutcome, CostPredictor, ShardSpec};
use omega_core::ScanParams;
use omega_fpga_sim::FpgaDevice;
use omega_genome::ms::{read_ms, MsReadOptions};
use omega_genome::sites::read_sites;
use omega_genome::vcf::{read_vcf_with, VcfReadOptions};
use omega_genome::{fasta, Alignment};
use omega_gpu_sim::{GpuDevice, OverlapMode};
use omega_obs::{JsonObject, JsonValue};

use crate::digest::Fnv64;

/// Default region length for `ms` coordinate scaling when the request
/// does not carry one (matches the CLI default).
pub const DEFAULT_MS_LENGTH: u64 = 100_000;

/// Which worker lane executes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Host CPU lane.
    Cpu,
    /// Simulated-GPU lane.
    Gpu,
    /// Simulated-FPGA lane.
    Fpga,
}

impl BackendKind {
    /// All lanes, in worker-spawn order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Cpu, BackendKind::Gpu, BackendKind::Fpga];

    /// Lane index (stable: cpu=0, gpu=1, fpga=2).
    pub fn index(self) -> usize {
        match self {
            BackendKind::Cpu => 0,
            BackendKind::Gpu => 1,
            BackendKind::Fpga => 2,
        }
    }

    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Cpu => "cpu",
            BackendKind::Gpu => "gpu",
            BackendKind::Fpga => "fpga",
        }
    }
}

/// Why a `POST /scan` body was rejected (always a 4xx, never a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The body was not valid JSON.
    Json(String),
    /// A required member was absent.
    MissingField(&'static str),
    /// A member had the wrong type or an out-of-range value.
    BadField(&'static str, String),
    /// Unknown `format` / `backend` / `device` selector.
    UnknownSelector(&'static str, String),
    /// The payload failed to parse as the declared format.
    Payload(String),
    /// The scan parameters failed validation.
    InvalidParams(String),
    /// The payload parsed but contains no replicates.
    EmptyInput,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Json(e) => write!(f, "request body is not valid JSON: {e}"),
            RequestError::MissingField(name) => write!(f, "missing required field {name:?}"),
            RequestError::BadField(name, why) => write!(f, "bad field {name:?}: {why}"),
            RequestError::UnknownSelector(what, got) => write!(f, "unknown {what} {got:?}"),
            RequestError::Payload(e) => write!(f, "payload does not parse: {e}"),
            RequestError::InvalidParams(e) => write!(f, "{e}"),
            RequestError::EmptyInput => write!(f, "payload contains no replicates"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A fully validated scan job, ready to queue.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Lane selector.
    pub kind: BackendKind,
    /// Device selector within the lane ("" = the lane default).
    pub device: String,
    /// Backend label as reported in results (e.g. "GPU (Tesla K80)").
    pub backend_label: String,
    /// Validated scan parameters.
    pub params: ScanParams,
    /// Transfer/compute overlap schedule.
    pub overlap: OverlapMode,
    /// Parsed replicates (one for FASTA/VCF, one-or-more for ms).
    pub alignments: Vec<Alignment>,
    /// FNV-1a digest over (format, region length, payload bytes).
    pub payload_digest: u64,
    /// Optional per-request deadline, relative to submission.
    pub deadline: Option<std::time::Duration>,
    /// Whether `kind` was chosen by the `backend=auto` cost predictor
    /// rather than the client.
    pub auto_routed: bool,
    /// The predictor's runtime estimate for the chosen lane (seconds of
    /// modelled/measured LD+ω); set only for auto-routed jobs, compared
    /// against the actual stage time after the run.
    pub predicted_seconds: Option<f64>,
    /// Cluster shard geometry: when set, the job evaluates only this
    /// slice of the *global* grid, with positions recomputed from the
    /// global first/last-SNP coordinates (bit-identical to the
    /// single-node plan). Shard requests carry exactly one replicate.
    pub shard: Option<ShardSpec>,
    /// `"cache":"bypass"` — skip the result-cache lookup so the scan
    /// recomputes even on a warm cache (the cluster loadgen uses this to
    /// measure real scatter-gather compute throughput).
    pub cache_bypass: bool,
}

/// Builds the concrete backend for a validated request.
pub fn make_backend(kind: BackendKind, device: &str) -> Result<Backend, RequestError> {
    match kind {
        BackendKind::Cpu => Ok(Backend::Cpu),
        BackendKind::Gpu => Ok(Backend::Gpu(match device {
            "" | "k80" => GpuDevice::tesla_k80(),
            "radeon" => GpuDevice::radeon_hd8750m(),
            other => return Err(RequestError::UnknownSelector("GPU device", other.to_string())),
        })),
        BackendKind::Fpga => Ok(Backend::Fpga(match device {
            "" | "alveo" => FpgaDevice::alveo_u200(),
            "zcu102" => FpgaDevice::zcu102(),
            other => return Err(RequestError::UnknownSelector("FPGA device", other.to_string())),
        })),
    }
}

fn get_u64(v: &JsonValue, field: &'static str) -> Result<Option<u64>, RequestError> {
    match v.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(m) => m
            .as_u64()
            .map(Some)
            .ok_or_else(|| RequestError::BadField(field, "expected a non-negative integer".into())),
    }
}

fn parse_params(v: &JsonValue) -> Result<ScanParams, RequestError> {
    let mut params = ScanParams { threads: 1, ..ScanParams::default() };
    if let Some(p) = v.get("params") {
        if p.as_object().is_none() {
            return Err(RequestError::BadField("params", "expected an object".into()));
        }
        if let Some(grid) = get_u64(p, "grid")? {
            params.grid = grid as usize;
        }
        if let Some(w) = get_u64(p, "min_win")? {
            params.min_win = w;
        }
        if let Some(w) = get_u64(p, "max_win")? {
            params.max_win = w;
        }
        if let Some(n) = get_u64(p, "min_snps")? {
            params.min_snps_per_side = n as usize;
        }
    }
    params.validate().map_err(|e| RequestError::InvalidParams(e.to_string()))?;
    Ok(params)
}

/// Parses and validates a `POST /scan` body.
pub fn parse_scan_request(body: &str) -> Result<ScanRequest, RequestError> {
    let v = omega_obs::parse_json(body).map_err(|e| RequestError::Json(e.to_string()))?;
    if v.as_object().is_none() {
        return Err(RequestError::Json("top-level value must be an object".into()));
    }

    let format = v
        .get("format")
        .ok_or(RequestError::MissingField("format"))?
        .as_str()
        .ok_or_else(|| RequestError::BadField("format", "expected a string".into()))?
        .to_string();
    let payload = v
        .get("payload")
        .ok_or(RequestError::MissingField("payload"))?
        .as_str()
        .ok_or_else(|| RequestError::BadField("payload", "expected a string".into()))?;

    let length = get_u64(&v, "length")?;
    let params = parse_params(&v)?;

    // The lane selector validates before the payload is parsed (so a bad
    // selector is reported even alongside a bad payload); `auto` defers
    // the actual choice until the alignments exist to predict over.
    let explicit = match v.get("backend").and_then(JsonValue::as_str).unwrap_or("cpu") {
        "cpu" => Some(BackendKind::Cpu),
        "gpu" => Some(BackendKind::Gpu),
        "fpga" => Some(BackendKind::Fpga),
        "auto" => None,
        other => return Err(RequestError::UnknownSelector("backend", other.to_string())),
    };
    let device = v.get("device").and_then(JsonValue::as_str).unwrap_or("").to_string();
    if explicit.is_none() && !device.is_empty() {
        return Err(RequestError::BadField(
            "device",
            "cannot be combined with backend \"auto\" (the router picks the lane)".into(),
        ));
    }
    // Explicit device selectors still fail fast, before payload parsing.
    if let Some(kind) = explicit {
        make_backend(kind, &device)?;
    }

    let overlap = match v.get("overlap").and_then(JsonValue::as_str).unwrap_or("off") {
        "on" => OverlapMode::DoubleBuffered,
        "off" => OverlapMode::Serialized,
        other => return Err(RequestError::UnknownSelector("overlap mode", other.to_string())),
    };

    let deadline = get_u64(&v, "deadline_ms")?.map(std::time::Duration::from_millis);

    let cache_bypass = match v.get("cache").and_then(JsonValue::as_str).unwrap_or("use") {
        "use" => false,
        "bypass" => true,
        other => return Err(RequestError::UnknownSelector("cache mode", other.to_string())),
    };

    let shard = match v.get("shard") {
        None | Some(JsonValue::Null) => None,
        Some(s) => {
            if s.as_object().is_none() {
                return Err(RequestError::BadField("shard", "expected an object".into()));
            }
            let field = |name: &'static str| -> Result<u64, RequestError> {
                get_u64(s, name)?.ok_or(RequestError::MissingField(name))
            };
            let spec = ShardSpec {
                first_bp: field("first_bp")?,
                last_bp: field("last_bp")?,
                grid: field("grid")? as usize,
                lo: field("lo")? as usize,
                hi: field("hi")? as usize,
            };
            if !spec.is_valid() {
                return Err(RequestError::BadField(
                    "shard",
                    "requires first_bp <= last_bp and lo < hi <= grid".into(),
                ));
            }
            if spec.grid != params.grid {
                return Err(RequestError::BadField(
                    "shard",
                    "shard grid must equal params.grid (the global grid)".into(),
                ));
            }
            Some(spec)
        }
    };

    let alignments: Vec<Alignment> = match format.as_str() {
        "ms" => {
            let opts = MsReadOptions { region_len: length.unwrap_or(DEFAULT_MS_LENGTH) };
            read_ms(payload.as_bytes(), opts).map_err(|e| RequestError::Payload(e.to_string()))?
        }
        "fasta" => {
            let a = fasta::read_fasta(payload.as_bytes())
                .map_err(|e| RequestError::Payload(e.to_string()))?;
            let a = match length {
                Some(len) => {
                    a.with_region_len(len).map_err(|e| RequestError::Payload(e.to_string()))?
                }
                None => a,
            };
            vec![a]
        }
        "vcf" => {
            let out = read_vcf_with(payload.as_bytes(), VcfReadOptions { region_len: length })
                .map_err(|e| RequestError::Payload(e.to_string()))?;
            vec![out.alignment]
        }
        // Exact-coordinate shard payloads: positions are literal u64 bp,
        // so the worker sees byte-for-byte the sites the coordinator
        // sliced (no fractional rescaling).
        "sites" => {
            read_sites(payload.as_bytes()).map_err(|e| RequestError::Payload(e.to_string()))?
        }
        other => return Err(RequestError::UnknownSelector("format", other.to_string())),
    };
    if alignments.is_empty() || alignments.iter().all(|a| a.n_sites() == 0) {
        return Err(RequestError::EmptyInput);
    }
    if shard.is_some() && alignments.len() != 1 {
        return Err(RequestError::BadField(
            "shard",
            format!("shard requests carry exactly one replicate, got {}", alignments.len()),
        ));
    }

    // Auto routing: price the job on every lane and take the predicted
    // fastest. Resolving the label *here* means an auto job's cache key
    // and result bytes are exactly those of the equivalent explicit
    // request — routing is invisible downstream of admission.
    let (kind, auto_routed, predicted_seconds) = match explicit {
        Some(kind) => (kind, false, None),
        None => {
            let t0 = Instant::now();
            let prediction = CostPredictor::global().predict_batch(&alignments, &params);
            omega_obs::histogram!("serve.auto_predict_ns").record(t0.elapsed().as_nanos() as u64);
            let lane = prediction.fastest();
            omega_obs::counter!("serve.auto_routed").inc();
            let kind = match lane {
                AutoLane::Cpu => {
                    omega_obs::counter!("serve.auto_routed.cpu").inc();
                    BackendKind::Cpu
                }
                AutoLane::Gpu => {
                    omega_obs::counter!("serve.auto_routed.gpu").inc();
                    BackendKind::Gpu
                }
                AutoLane::Fpga => {
                    omega_obs::counter!("serve.auto_routed.fpga").inc();
                    BackendKind::Fpga
                }
            };
            (kind, true, Some(prediction.seconds_for(lane)))
        }
    };
    let backend_label = make_backend(kind, &device)?.label();

    let mut digest = Fnv64::new();
    digest.update(format.as_bytes());
    digest.update(&length.unwrap_or(0).to_le_bytes());
    digest.update(payload.as_bytes());

    Ok(ScanRequest {
        kind,
        device,
        backend_label,
        params,
        overlap,
        alignments,
        payload_digest: digest.finish(),
        deadline,
        auto_routed,
        predicted_seconds,
        shard,
        cache_bypass,
    })
}

/// Opaque job identifier (`j<n>` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl JobId {
    /// Parses the wire form (`j<n>`).
    pub fn parse(text: &str) -> Option<JobId> {
        text.strip_prefix('j')?.parse().ok().map(JobId)
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for its lane.
    Queued,
    /// A lane worker is scanning it.
    Running,
    /// Finished; result available.
    Done,
    /// Rejected by the detector or lane (message in the record).
    Failed,
    /// Its deadline passed before a lane picked it up.
    Expired,
}

impl JobState {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Expired => "expired",
        }
    }

    /// Whether this state ends the job's lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Expired)
    }
}

/// One job's mutable record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Current lifecycle state.
    pub state: JobState,
    /// Lane the job targets.
    pub kind: BackendKind,
    /// Whether the result came from the cache (detector untouched).
    pub cached: bool,
    /// Deterministic result JSON (shared with the cache).
    pub result: Option<Arc<String>>,
    /// Timing JSON (non-deterministic; absent for cached results).
    pub timing: Option<String>,
    /// Failure message, for `Failed`.
    pub error: Option<String>,
    /// Submission instant (latency accounting).
    pub submitted: Instant,
    /// When the job reached a terminal state (retention clock).
    pub finished: Option<Instant>,
    /// Trace id when the request opted into tracing (wire hex on the
    /// job body, joinable against `GET /traces/<id>`).
    pub trace_id: Option<u64>,
}

/// Outcome of a job-id lookup, distinguishing "never existed" from
/// "existed, since evicted" — the latter answers `410 Gone`, the former
/// `404 Not Found`.
#[derive(Debug, Clone)]
pub enum JobLookup {
    /// The record is live.
    Found(JobRecord),
    /// The id was allocated but its record has been evicted (bounded
    /// retention) or removed (admission-time rejection).
    Evicted,
    /// The id was never allocated by this daemon.
    Unknown,
}

/// Default cap on retained terminal job records.
pub const DEFAULT_RETAIN_TERMINAL: usize = 1024;
/// Default terminal-record age bound.
pub const DEFAULT_RETAIN_FOR: std::time::Duration = std::time::Duration::from_secs(600);

/// Age sweeps run at most once per this many terminal transitions, so
/// the common case stays an O(1) counter check.
const SWEEP_EVERY: usize = 64;

#[derive(Debug, Default)]
struct TableInner {
    map: HashMap<u64, JobRecord>,
    /// Terminal records currently retained (eviction trigger).
    terminal: usize,
    /// Terminal transitions since the last age sweep.
    since_sweep: usize,
}

/// The job table: id allocation plus state shared between the HTTP
/// handlers and the lane workers.
///
/// Terminal records are retained *bounded*: at most `retain_terminal`
/// of them, none older than `retain_for`. Without the bound, sustained
/// traffic grows the map (and daemon memory) without limit — each
/// completed job would pin its result JSON forever. Evicted ids answer
/// `410 Gone` rather than `404`, so clients can tell "polled too late"
/// from "never existed". Bounded retention is also what makes WAL
/// compaction possible: the log only needs to cover what the table
/// still remembers.
#[derive(Debug)]
pub struct JobTable {
    next: AtomicU64,
    inner: Mutex<TableInner>,
    retain_terminal: usize,
    retain_for: std::time::Duration,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable::with_retention(DEFAULT_RETAIN_TERMINAL, DEFAULT_RETAIN_FOR)
    }
}

impl JobTable {
    /// A table retaining at most `retain_terminal` terminal records,
    /// none older than `retain_for`.
    pub fn with_retention(retain_terminal: usize, retain_for: std::time::Duration) -> Self {
        JobTable {
            next: AtomicU64::new(0),
            inner: Mutex::new(TableInner::default()),
            retain_terminal: retain_terminal.max(1),
            retain_for,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn fresh_record(kind: BackendKind) -> JobRecord {
        JobRecord {
            state: JobState::Queued,
            kind,
            cached: false,
            result: None,
            timing: None,
            error: None,
            submitted: Instant::now(),
            finished: None,
            trace_id: None,
        }
    }

    /// Allocates a job in `Queued` state.
    pub fn create(&self, kind: BackendKind) -> JobId {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.lock().map.insert(id, Self::fresh_record(kind));
        omega_obs::counter!("serve.jobs").inc();
        JobId(id)
    }

    /// Re-creates a job under its pre-crash id (WAL recovery). The id
    /// allocator is bumped past `id` so fresh allocations never collide.
    pub fn create_with_id(&self, id: JobId, kind: BackendKind) {
        self.next.fetch_max(id.0, Ordering::Relaxed);
        self.lock().map.insert(id.0, Self::fresh_record(kind));
        omega_obs::counter!("serve.jobs").inc();
    }

    /// Marks ids `<= floor` as allocated (recovery: ids a pre-crash
    /// client may hold must not be re-issued, and must answer 410, not
    /// 404, when their records did not survive).
    pub fn reserve_through(&self, floor: u64) {
        self.next.fetch_max(floor, Ordering::Relaxed);
    }

    /// Allocates a job already completed from the cache.
    pub fn create_cached(&self, kind: BackendKind, result: Arc<String>) -> JobId {
        let id = self.create(kind);
        self.update(id, |r| {
            r.state = JobState::Done;
            r.cached = true;
            r.result = Some(result);
        });
        id
    }

    /// Snapshot of one record.
    pub fn get(&self, id: JobId) -> Option<JobRecord> {
        self.lock().map.get(&id.0).cloned()
    }

    /// Looks up `id`, distinguishing evicted from never-allocated.
    pub fn lookup(&self, id: JobId) -> JobLookup {
        if let Some(r) = self.lock().map.get(&id.0) {
            return JobLookup::Found(r.clone());
        }
        if id.0 >= 1 && id.0 <= self.next.load(Ordering::Relaxed) {
            JobLookup::Evicted
        } else {
            JobLookup::Unknown
        }
    }

    /// Applies `f` to the record, if present. A transition into a
    /// terminal state stamps the retention clock and (amortised)
    /// enforces the retention bounds.
    pub fn update(&self, id: JobId, f: impl FnOnce(&mut JobRecord)) {
        let mut inner = self.lock();
        let Some(r) = inner.map.get_mut(&id.0) else { return };
        let was_terminal = r.state.is_terminal();
        f(r);
        let now_terminal = r.state.is_terminal();
        if now_terminal && r.finished.is_none() {
            r.finished = Some(Instant::now());
        }
        if now_terminal && !was_terminal {
            inner.terminal += 1;
            inner.since_sweep += 1;
            if inner.terminal > self.retain_terminal || inner.since_sweep >= SWEEP_EVERY {
                self.enforce_retention(&mut inner);
            }
        }
    }

    /// Evicts terminal records beyond the count cap (oldest-finished
    /// first) and any older than the age bound.
    fn enforce_retention(&self, inner: &mut TableInner) {
        inner.since_sweep = 0;
        let now = Instant::now();
        let mut terminal: Vec<(u64, Instant)> = inner
            .map
            .iter()
            .filter(|(_, r)| r.state.is_terminal())
            .map(|(&id, r)| (id, r.finished.unwrap_or(r.submitted)))
            .collect();
        terminal.sort_by_key(|&(_, at)| at);
        let over_cap = terminal.len().saturating_sub(self.retain_terminal);
        let mut evicted = 0u64;
        for (i, &(id, finished)) in terminal.iter().enumerate() {
            let too_old = now.duration_since(finished) > self.retain_for;
            if i < over_cap || too_old {
                inner.map.remove(&id);
                evicted += 1;
            }
        }
        inner.terminal = terminal.len() - evicted as usize;
        if evicted > 0 {
            omega_obs::counter!("serve.jobs_evicted").add(evicted);
        }
    }

    /// Removes a record (used when admission control rejects a job that
    /// was provisionally created).
    pub fn remove(&self, id: JobId) {
        let mut inner = self.lock();
        if let Some(r) = inner.map.remove(&id.0) {
            if r.state.is_terminal() {
                inner.terminal = inner.terminal.saturating_sub(1);
            }
        }
    }

    /// Live records (the bounded-memory figure for `/stats`).
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no records are live.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// Snapshot of every live job's (id, state) — the shutdown drain
    /// report.
    pub fn states(&self) -> Vec<(JobId, JobState)> {
        let mut out: Vec<(JobId, JobState)> =
            self.lock().map.iter().map(|(&id, r)| (JobId(id), r.state)).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

/// Per-backend end-to-end latency histogram (nanoseconds, from
/// submission to completion). The macro needs literal names, hence the
/// static match.
pub fn job_latency_histogram(kind: BackendKind) -> &'static omega_obs::Histogram {
    match kind {
        BackendKind::Cpu => omega_obs::histogram!("serve.latency.cpu"),
        BackendKind::Gpu => omega_obs::histogram!("serve.latency.gpu"),
        BackendKind::Fpga => omega_obs::histogram!("serve.latency.fpga"),
    }
}

/// Per-backend kernel-stage wall-time histogram (nanoseconds per
/// coalesced detector run). The exposition layer folds the backend
/// suffix into a `backend` label on one `omega_serve_kernel_ns` family.
pub fn kernel_stage_histogram(kind: BackendKind) -> &'static omega_obs::Histogram {
    match kind {
        BackendKind::Cpu => omega_obs::histogram!("serve.kernel_ns.cpu"),
        BackendKind::Gpu => omega_obs::histogram!("serve.kernel_ns.gpu"),
        BackendKind::Fpga => omega_obs::histogram!("serve.kernel_ns.fpga"),
    }
}

/// Serialises the functional part of a batch outcome deterministically:
/// identical inputs yield identical bytes (floats via shortest
/// round-trip, plus the raw bits for audit). Timing is deliberately
/// excluded — it lives in [`timing_json`].
pub fn result_json(outcome: &BatchOutcome) -> String {
    let mut reps = String::from("[");
    for (i, rep) in outcome.replicates.iter().enumerate() {
        if i > 0 {
            reps.push(',');
        }
        let mut positions = String::from("[");
        for (j, p) in rep.results.iter().enumerate() {
            if j > 0 {
                positions.push(',');
            }
            let pos = JsonObject::new()
                .u64("pos_bp", p.pos_bp)
                .f64("omega", f64::from(p.omega))
                .u64("omega_bits", u64::from(p.omega.to_bits()))
                .u64("left_bp", p.left_bp)
                .u64("right_bp", p.right_bp)
                .u64("n_combinations", p.n_combinations)
                .finish();
            positions.push_str(&pos);
        }
        positions.push(']');
        let stats = JsonObject::new()
            .u64("omega_evaluations", rep.stats.omega_evaluations)
            .u64("r2_pairs", rep.stats.r2_pairs)
            .u64("scorable_positions", rep.stats.scorable_positions as u64)
            .finish();
        let _ = write!(reps, "{{\"positions\":{positions},\"stats\":{stats}}}");
    }
    reps.push(']');
    JsonObject::new()
        .string("backend", &outcome.backend)
        .u64("n_replicates", outcome.n_replicates() as u64)
        .raw("replicates", &reps)
        .finish()
}

/// Serialises the (non-deterministic) timing of a batch outcome.
pub fn timing_json(outcome: &BatchOutcome) -> String {
    JsonObject::new()
        .f64("ld_seconds", outcome.ld_seconds)
        .f64("omega_seconds", outcome.omega_seconds)
        .f64("other_seconds", outcome.other_seconds)
        .f64("overlap_hidden_seconds", outcome.overlap_hidden_seconds)
        .f64("transfer_seconds", outcome.transfer_seconds)
        .f64("total_seconds", outcome.total_seconds())
        .finish()
}

/// Renders one job as the `GET /jobs/<id>` body.
pub fn job_json(id: JobId, record: &JobRecord) -> String {
    let mut obj = JsonObject::new()
        .string("job", &id.to_string())
        .string("state", record.state.as_str())
        .string("backend", record.kind.as_str())
        .raw("cached", if record.cached { "true" } else { "false" });
    if let Some(result) = &record.result {
        obj = obj.raw("result", result);
    }
    if let Some(timing) = &record.timing {
        obj = obj.raw("timing", timing);
    }
    if let Some(error) = &record.error {
        obj = obj.string("error", error);
    }
    if let Some(trace_id) = record.trace_id {
        obj = obj.string("trace", &format!("{trace_id:016x}"));
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms_payload() -> String {
        "ms 4 1\n1234\n\n//\nsegsites: 3\npositions: 0.1 0.4 0.8\n101\n010\n110\n001\n".to_string()
    }

    fn body(extra: &str) -> String {
        format!("{{\"format\":\"ms\",\"payload\":{:?}{extra}}}", ms_payload())
    }

    #[test]
    fn minimal_ms_request_parses() {
        let req = parse_scan_request(&body("")).unwrap();
        assert_eq!(req.kind, BackendKind::Cpu);
        assert_eq!(req.alignments.len(), 1);
        assert_eq!(req.alignments[0].n_sites(), 3);
        assert_eq!(req.overlap, OverlapMode::Serialized);
        assert!(req.deadline.is_none());
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = parse_scan_request(&body("")).unwrap();
        let b = parse_scan_request(&body(",\"params\":{\"grid\":4}")).unwrap();
        // Same payload, different params: same digest (params are keyed
        // separately in the cache key).
        assert_eq!(a.payload_digest, b.payload_digest);
        let other = body("").replace("0.8", "0.9");
        let c = parse_scan_request(&other).unwrap();
        assert_ne!(a.payload_digest, c.payload_digest);
    }

    #[test]
    fn selectors_and_fields_validate() {
        assert!(matches!(
            parse_scan_request("{\"format\":\"ms\"}"),
            Err(RequestError::MissingField("payload"))
        ));
        assert!(matches!(parse_scan_request("not json"), Err(RequestError::Json(_))));
        assert!(matches!(
            parse_scan_request(&body(",\"backend\":\"tpu\"")),
            Err(RequestError::UnknownSelector("backend", _))
        ));
        assert!(matches!(
            parse_scan_request(&body(",\"params\":{\"grid\":0}")),
            Err(RequestError::InvalidParams(_))
        ));
        assert!(matches!(
            parse_scan_request(&body(",\"overlap\":\"maybe\"")),
            Err(RequestError::UnknownSelector("overlap mode", _))
        ));
        assert!(matches!(
            parse_scan_request("{\"format\":\"ms\",\"payload\":\"garbage\"}"),
            Err(RequestError::Payload(_) | RequestError::EmptyInput)
        ));
    }

    #[test]
    fn gpu_device_selector_resolves() {
        let req = parse_scan_request(&body(",\"backend\":\"gpu\",\"device\":\"k80\"")).unwrap();
        assert_eq!(req.kind, BackendKind::Gpu);
        assert!(req.backend_label.contains("K80"));
        assert!(matches!(
            parse_scan_request(&body(",\"backend\":\"gpu\",\"device\":\"nope\"")),
            Err(RequestError::UnknownSelector("GPU device", _))
        ));
    }

    #[test]
    fn job_table_lifecycle() {
        let table = JobTable::default();
        let id = table.create(BackendKind::Cpu);
        assert_eq!(table.get(id).unwrap().state, JobState::Queued);
        table.update(id, |r| {
            r.state = JobState::Done;
            r.result = Some(Arc::new("{}".to_string()));
        });
        let record = table.get(id).unwrap();
        assert_eq!(record.state, JobState::Done);
        let json = job_json(id, &record);
        let v = omega_obs::parse_json(&json).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(v.get("job").unwrap().as_str(), Some(id.to_string().as_str()));
        assert_eq!(JobId::parse(&id.to_string()), Some(id));
        assert_eq!(JobId::parse("zzz"), None);
    }
}
