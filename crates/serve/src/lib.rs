//! omega-serve: an async sweep-scan service over the batched ω-scan
//! engine.
//!
//! The daemon turns the library's [`omega_accel::BatchDetector`] into a
//! long-lived network service with three load-shaping layers:
//!
//! 1. **Admission control** ([`queue`]): bounded per-backend lanes.
//!    A full lane rejects at the door (HTTP 429 + `Retry-After`);
//!    accepted work always runs or expires on its own deadline, and
//!    shutdown drains gracefully (finish queued, reject new).
//! 2. **Batching** ([`scheduler`]): each lane worker drains its queue
//!    and coalesces same-configuration jobs into one detector run —
//!    replicates from many requests ride one transfer-overlap pipeline,
//!    and per-replicate results stay bit-identical to solo runs.
//! 3. **Result caching** ([`cache`]): a content-addressed LRU keyed by
//!    (input digest, params, backend, overlap mode). A repeat request
//!    returns the exact bytes of the first run without touching a
//!    detector.
//! 4. **Durability** ([`wal`] + [`store`], opt-in via `-data-dir`): a
//!    write-ahead job log fsync'd on admission and terminal state, plus
//!    an on-disk content-addressed result store the cache writes
//!    through to. A killed daemon restarted on the same data dir
//!    re-enqueues queued jobs, keeps finished results byte-identical,
//!    and boots with a warm cache.
//!
//! Networking is a deliberately small hand-rolled HTTP/1.1 layer
//! ([`http`]) over `std::net` — the workspace's offline vendor policy
//! means no async runtime and no HTTP dependency, and the daemon's
//! request shapes don't need one. Everything observable flows through
//! `omega-obs` instruments (all registered in
//! `omega_obs::names::INSTRUMENTS`) and is exported by `GET /stats`.
//!
//! Boot it from the CLI (`omegaplus serve`) or embed it:
//!
//! ```no_run
//! let handle = omega_serve::start(omega_serve::ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..Default::default()
//! }).unwrap();
//! println!("listening on {}", handle.addr());
//! handle.shutdown();
//! ```

pub mod cache;
pub mod digest;
pub mod http;
pub mod job;
pub mod queue;
pub mod scheduler;
pub mod server;
pub mod store;
pub mod wal;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use digest::fnv64;
pub use job::{parse_scan_request, JobId, JobLookup, JobState, RequestError};
pub use queue::{Lanes, SubmitError};
pub use server::{start, ServeConfig, ServeHandle};
pub use store::ResultStore;
pub use wal::{RecoveredState, Replay, Wal};
