//! Bounded per-backend job queues with admission control.
//!
//! Each backend (cpu / gpu-sim / fpga-sim) gets its own lane: a bounded
//! FIFO drained by a dedicated worker. Separate lanes are the
//! head-of-line-blocking fix — a slow FPGA-sim batch cannot delay CPU
//! jobs, because CPU jobs never sit behind it. Admission control is
//! explicit: a full lane rejects the submission *at the door* with a
//! [`SubmitError::QueueFull`] (surfaced as HTTP 429 + `Retry-After`)
//! instead of queueing unbounded work the daemon cannot finish.
//!
//! Lanes support pausing (maintenance: accept-and-hold without running)
//! and draining (graceful shutdown: reject new work, finish what's
//! queued). Queue depth is exported through the `serve.queue_depth`
//! gauge; rejections count into `serve.rejected`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use omega_obs::RequestTrace;

use crate::job::{BackendKind, JobId, ScanRequest};

/// One admitted job waiting for its lane worker.
#[derive(Debug)]
pub struct Submission {
    /// Job table id.
    pub id: JobId,
    /// The validated request.
    pub request: ScanRequest,
    /// Request trace, when the caller opted into tracing. Crosses the
    /// handler → lane-worker thread boundary with the job.
    pub trace: Option<Arc<RequestTrace>>,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target lane is at capacity; retry after backoff.
    QueueFull {
        /// Jobs currently queued in the lane.
        queued: usize,
        /// The lane's capacity.
        capacity: usize,
    },
    /// The daemon is draining for shutdown; no new work is admitted.
    Draining,
}

#[derive(Debug, Default)]
struct Lane {
    queue: Mutex<VecDeque<Submission>>,
    ready: Condvar,
}

/// The three backend lanes.
#[derive(Debug)]
pub struct Lanes {
    lanes: [Lane; 3],
    capacity: usize,
    draining: AtomicBool,
    paused: AtomicBool,
    poisoned: AtomicBool,
}

impl Lanes {
    /// Lanes with `capacity` queued jobs each.
    pub fn with_capacity(capacity: usize) -> Self {
        Lanes {
            lanes: [Lane::default(), Lane::default(), Lane::default()],
            capacity,
            draining: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Per-lane capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock_lane(&self, kind: BackendKind) -> std::sync::MutexGuard<'_, VecDeque<Submission>> {
        self.lanes[kind.index()].queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn publish_depth(&self) {
        let depth: usize = BackendKind::ALL.iter().map(|&k| self.lock_lane(k).len()).sum();
        omega_obs::gauge!("serve.queue_depth").set(depth as i64);
    }

    /// Admits `submission` to its lane, or rejects it. Admission is the
    /// only place capacity is checked, so accepted work always runs
    /// (or expires on its own deadline).
    pub fn submit(&self, submission: Submission) -> Result<(), SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            omega_obs::counter!("serve.rejected").inc();
            return Err(SubmitError::Draining);
        }
        let kind = submission.request.kind;
        {
            let mut queue = self.lock_lane(kind);
            if queue.len() >= self.capacity {
                omega_obs::counter!("serve.rejected").inc();
                return Err(SubmitError::QueueFull {
                    queued: queue.len(),
                    capacity: self.capacity,
                });
            }
            queue.push_back(submission);
        }
        self.publish_depth();
        self.lanes[kind.index()].ready.notify_all();
        Ok(())
    }

    /// Re-enqueues a job recovered from the write-ahead log at boot,
    /// bypassing the capacity check: the job was already admitted (and
    /// acknowledged with a 202) by the previous process, so rejecting
    /// it now would silently drop acknowledged work. Runs before the
    /// lane workers start, so ordering is exactly replay order.
    pub fn restore(&self, submission: Submission) {
        let kind = submission.request.kind;
        self.lock_lane(kind).push_back(submission);
        self.publish_depth();
        self.lanes[kind.index()].ready.notify_all();
    }

    /// Simulated crash for recovery tests: lane workers stop picking up
    /// work *immediately*, leaving queued submissions stranded exactly
    /// as a SIGKILL would. Unlike [`Lanes::begin_drain`], queued work is
    /// NOT finished.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for lane in &self.lanes {
            lane.ready.notify_all();
        }
    }

    /// Blocks until lane `kind` has work (or the daemon drains dry),
    /// then drains the whole lane in one batch — the coalescing window
    /// the scheduler batches over. Returns `None` when the lane is done
    /// for good (draining and empty, or poisoned).
    pub fn pop_batch(&self, kind: BackendKind) -> Option<Vec<Submission>> {
        let lane = &self.lanes[kind.index()];
        let mut queue = lane.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return None;
            }
            if !self.paused.load(Ordering::SeqCst) && !queue.is_empty() {
                let batch: Vec<Submission> = queue.drain(..).collect();
                drop(queue);
                self.publish_depth();
                return Some(batch);
            }
            if self.draining.load(Ordering::SeqCst) && queue.is_empty() {
                return None;
            }
            // Timed wait so pause/drain flag flips are observed even if
            // a notification races the wait.
            let (q, _timeout) = lane
                .ready
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            queue = q;
        }
    }

    /// Holds queued work without rejecting submissions (admission
    /// control still applies). Used for maintenance and by tests that
    /// need a deterministically full queue.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes paused lanes.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
        for lane in &self.lanes {
            lane.ready.notify_all();
        }
    }

    /// Enters drain mode: new submissions are rejected, queued work is
    /// finished, and workers exit once their lane is dry.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // A paused daemon must still drain, or shutdown would hang.
        self.paused.store(false, Ordering::SeqCst);
        for lane in &self.lanes {
            lane.ready.notify_all();
        }
    }

    /// Whether drain mode is on.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Total queued jobs across lanes.
    pub fn depth(&self) -> usize {
        BackendKind::ALL.iter().map(|&k| self.lock_lane(k).len()).sum()
    }

    /// Queued jobs in one lane (the `/healthz` per-lane depth report).
    pub fn depth_of(&self, kind: BackendKind) -> usize {
        self.lock_lane(kind).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::parse_scan_request;

    fn request() -> ScanRequest {
        let payload = "ms 4 1\n1\n\n//\nsegsites: 3\npositions: 0.1 0.4 0.8\n101\n010\n110\n001\n";
        parse_scan_request(&format!("{{\"format\":\"ms\",\"payload\":{payload:?}}}")).unwrap()
    }

    fn submission(id: u64) -> Submission {
        Submission { id: JobId(id), request: request(), trace: None }
    }

    #[test]
    fn capacity_is_enforced_per_lane() {
        let lanes = Lanes::with_capacity(2);
        lanes.submit(submission(1)).unwrap();
        lanes.submit(submission(2)).unwrap();
        let err = lanes.submit(submission(3)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { queued: 2, capacity: 2 });
        assert_eq!(lanes.depth(), 2);
    }

    #[test]
    fn pop_batch_drains_everything_queued() {
        let lanes = Lanes::with_capacity(8);
        for i in 0..3 {
            lanes.submit(submission(i)).unwrap();
        }
        let batch = lanes.pop_batch(BackendKind::Cpu).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(lanes.depth(), 0);
    }

    #[test]
    fn drain_rejects_new_and_finishes_old() {
        let lanes = Lanes::with_capacity(8);
        lanes.submit(submission(1)).unwrap();
        lanes.begin_drain();
        assert_eq!(lanes.submit(submission(2)).unwrap_err(), SubmitError::Draining);
        // The queued job still comes out, then the lane reports done.
        assert_eq!(lanes.pop_batch(BackendKind::Cpu).unwrap().len(), 1);
        assert!(lanes.pop_batch(BackendKind::Cpu).is_none());
        assert!(lanes.pop_batch(BackendKind::Gpu).is_none());
    }

    #[test]
    fn pause_holds_work_without_rejecting() {
        let lanes = std::sync::Arc::new(Lanes::with_capacity(8));
        lanes.pause();
        lanes.submit(submission(1)).unwrap();
        let l2 = std::sync::Arc::clone(&lanes);
        let popper = std::thread::spawn(move || l2.pop_batch(BackendKind::Cpu));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!popper.is_finished(), "paused lane must not release work");
        lanes.resume();
        assert_eq!(popper.join().unwrap().unwrap().len(), 1);
    }
}
