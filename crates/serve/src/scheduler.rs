//! The batching scheduler: one worker per backend lane.
//!
//! A worker blocks on its lane, drains whatever is queued, groups the
//! drained jobs by (device, overlap, params), and runs each group as a
//! *single* [`omega_accel::BatchDetector`] batch — replicates from many
//! requests flow through one detector, reusing the transfer-overlap
//! machinery exactly as a multi-replicate CLI run would. Per-replicate
//! results are bit-identical to independent runs (the `BatchDetector`
//! contract), so coalescing is invisible to clients.
//!
//! The worker keeps its last detector alive across groups: when only the
//! parameters change it retargets it through [`BatchDetector::reset`]
//! (no backend re-validation); an incompatible retarget fails just that
//! group with the typed [`omega_accel::ReconfigureError`], never the
//! lane.

use std::sync::Arc;
use std::time::Instant;

use omega_accel::{shard::shard_grid_plan, BatchDetector, BatchOutcome, ShardSpec};
use omega_core::{ScanParams, ScanStats};
use omega_gpu_sim::OverlapMode;

use crate::cache::{CacheKey, ResultCache};
use crate::job::{job_latency_histogram, kernel_stage_histogram, make_backend};
use crate::job::{result_json, timing_json, BackendKind, JobState, JobTable};
use crate::queue::{Lanes, Submission};
use crate::store::key_digest;
use crate::wal::Wal;

/// Jobs that batch into one detector run share this configuration.
/// Shard jobs group only with jobs of the *same* shard geometry — a
/// shard evaluates a custom grid slice, so it can never coalesce with a
/// whole-scan batch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GroupKey {
    device: String,
    overlap_on: bool,
    params: ScanParams,
    shard: Option<ShardSpec>,
}

/// Partitions a drained batch into runnable groups, preserving
/// first-seen order (fairness: earlier submissions run first).
fn group_submissions(batch: Vec<Submission>) -> Vec<(GroupKey, Vec<Submission>)> {
    let mut groups: Vec<(GroupKey, Vec<Submission>)> = Vec::new();
    for sub in batch {
        let key = GroupKey {
            device: sub.request.device.clone(),
            overlap_on: sub.request.overlap == OverlapMode::DoubleBuffered,
            params: sub.request.params,
            shard: sub.request.shard,
        };
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(sub),
            None => groups.push((key, vec![sub])),
        }
    }
    groups
}

/// A lane's reusable detector: rebuilt only when device/overlap change,
/// retargeted in place when just the parameters do.
struct LaneDetector {
    device: String,
    overlap: OverlapMode,
    detector: BatchDetector,
}

fn obtain_detector(
    kind: BackendKind,
    key: &GroupKey,
    current: &mut Option<LaneDetector>,
    overlap: OverlapMode,
) -> Result<(), String> {
    if let Some(lane) = current.as_mut() {
        if lane.device == key.device && lane.overlap == overlap {
            if *lane.detector.detector().params() != key.params {
                // The typed mid-batch error: backend stays validated.
                lane.detector.reset(key.params).map_err(|e| e.to_string())?;
            }
            return Ok(());
        }
    }
    let backend = make_backend(kind, &key.device).map_err(|e| e.to_string())?;
    let detector =
        BatchDetector::new(key.params, backend).map_err(|e| e.to_string())?.with_overlap(overlap);
    *current = Some(LaneDetector { device: key.device.clone(), overlap, detector });
    Ok(())
}

/// Per-job slice of a coalesced batch outcome. `BatchOutcome` exposes
/// its fields, so a job's view is rebuilt from its replicate range with
/// re-aggregated timing/stats — the replicate outcomes themselves are
/// exactly what a solo run would produce.
fn job_outcome(whole: &BatchOutcome, start: usize, len: usize) -> BatchOutcome {
    let replicates = whole.replicates[start..start + len].to_vec();
    let mut stats = ScanStats::default();
    let mut ld = 0.0f64;
    let mut omega = 0.0f64;
    let mut other = 0.0f64;
    let mut hidden = 0.0f64;
    let mut transfer = 0.0f64;
    for rep in &replicates {
        ld += rep.ld_seconds;
        omega += rep.omega_seconds;
        other += rep.other_seconds;
        hidden += rep.overlap_hidden_seconds;
        transfer += rep.transfer_seconds;
        stats.accumulate(&rep.stats);
    }
    BatchOutcome {
        backend: whole.backend.clone(),
        replicates,
        ld_seconds: ld,
        omega_seconds: omega,
        other_seconds: other,
        overlap_hidden_seconds: hidden,
        transfer_seconds: transfer,
        stats,
    }
}

/// Closes a traced job's request trace with a terminal state annotation.
fn finish_trace(sub: &Submission, kind: BackendKind, state: JobState) {
    if let Some(trace) = &sub.trace {
        trace.annotate("job", &sub.id.to_string());
        trace.annotate("backend", kind.as_str());
        trace.annotate("state", state.as_str());
        trace.finish();
    }
}

/// The shared state a lane worker touches on every group: the job
/// table, the result cache, and (when persistence is on) the WAL.
struct LaneCtx<'a> {
    table: &'a JobTable,
    cache: &'a ResultCache,
    wal: Option<&'a Wal>,
}

fn fail_group(ctx: &LaneCtx<'_>, kind: BackendKind, members: &[Submission], message: &str) {
    for sub in members {
        ctx.table.update(sub.id, |r| {
            r.state = JobState::Failed;
            r.error = Some(message.to_string());
        });
        if let Some(wal) = ctx.wal {
            wal.append_terminal(sub.id.0, JobState::Failed, None);
        }
        finish_trace(sub, kind, JobState::Failed);
    }
}

fn run_group(
    kind: BackendKind,
    key: &GroupKey,
    members: Vec<Submission>,
    current: &mut Option<LaneDetector>,
    ctx: &LaneCtx<'_>,
    pickup: Instant,
) {
    let LaneCtx { table, cache, wal } = *ctx;
    // Deadline check happens at pickup: a job whose deadline passed
    // while queued expires without costing detector time.
    let mut live: Vec<Submission> = Vec::with_capacity(members.len());
    for sub in members {
        let expired = sub
            .request
            .deadline
            .zip(table.get(sub.id).map(|r| r.submitted))
            .is_some_and(|(deadline, submitted)| submitted.elapsed() > deadline);
        if expired {
            table.update(sub.id, |r| {
                r.state = JobState::Expired;
                r.error = Some("deadline exceeded before a lane picked the job up".to_string());
            });
            if let Some(wal) = wal {
                wal.append_terminal(sub.id.0, JobState::Expired, None);
            }
            finish_trace(&sub, kind, JobState::Expired);
        } else {
            live.push(sub);
        }
    }
    if live.is_empty() {
        return;
    }

    // Queue-wait stage: submission instant → lane pickup. Recorded into
    // the histogram for every job; traced jobs also get the span.
    for sub in &live {
        let Some(submitted) = table.get(sub.id).map(|r| r.submitted) else { continue };
        let wait_ns = pickup.saturating_duration_since(submitted).as_nanos() as u64;
        omega_obs::histogram!("serve.queue_wait_ns").record(wait_ns);
        if let Some(trace) = &sub.trace {
            let start_ns = trace.offset_of(submitted);
            trace.record_wall("serve.queue_wait", trace.root_span(), start_ns, wait_ns);
        }
    }

    let overlap =
        if key.overlap_on { OverlapMode::DoubleBuffered } else { OverlapMode::Serialized };
    if let Err(message) = obtain_detector(kind, key, current, overlap) {
        fail_group(ctx, kind, &live, &message);
        return;
    }
    let Some(lane) = current.as_ref() else {
        fail_group(ctx, kind, &live, "internal: lane detector unavailable");
        return;
    };

    for sub in &live {
        table.update(sub.id, |r| r.state = JobState::Running);
    }
    omega_obs::histogram!("serve.batch_size").record(live.len() as u64);

    // One coalesced run over every member's replicates.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(live.len());
    let mut alignments = Vec::new();
    for sub in &live {
        ranges.push((alignments.len(), sub.request.alignments.len()));
        alignments.extend(sub.request.alignments.iter().cloned());
    }

    // Coalesce stage: pickup → run start (grouping, detector obtain or
    // retarget, batch assembly).
    let run_start = Instant::now();
    let coalesce_ns = run_start.saturating_duration_since(pickup).as_nanos() as u64;
    omega_obs::histogram!("serve.coalesce_ns").record(coalesce_ns);
    for sub in &live {
        if let Some(trace) = &sub.trace {
            trace.record_wall(
                "serve.coalesce",
                trace.root_span(),
                trace.offset_of(pickup),
                coalesce_ns,
            );
        }
    }

    let outcome = {
        let _lane_span = match kind {
            BackendKind::Cpu => omega_obs::span!("serve.lane.cpu"),
            BackendKind::Gpu => omega_obs::span!("serve.lane.gpu"),
            BackendKind::Fpga => omega_obs::span!("serve.lane.fpga"),
        };
        match key.shard {
            // Shard jobs evaluate a slice of a *global* grid: positions
            // come from the ShardSpec geometry, not from the shipped
            // (sliced) alignment, so a coordinator's merged report is
            // bit-identical to a single-node scan.
            Some(spec) => {
                let det = lane.detector.detector();
                let mut outcomes = Vec::with_capacity(alignments.len());
                for alignment in &alignments {
                    match shard_grid_plan(alignment, &spec, &key.params) {
                        Some(plan) => outcomes.push(det.detect_with_plan(alignment, &plan)),
                        None => {
                            fail_group(ctx, kind, &live, "shard spec is not a valid grid slice");
                            return;
                        }
                    }
                }
                BatchOutcome::from_replicates(det.backend().label(), outcomes)
            }
            None => lane.detector.run_parallel(&alignments),
        }
    };

    // Kernel stage: the coalesced detector run's wall time, charged to
    // every member (they share the batch).
    let kernel_ns = run_start.elapsed().as_nanos() as u64;
    omega_obs::histogram!("serve.kernel_ns").record(kernel_ns);
    kernel_stage_histogram(kind).record(kernel_ns);

    for (sub, (start, len)) in live.iter().zip(ranges) {
        let per_job = job_outcome(&outcome, start, len);
        // Auto-routed jobs: absolute prediction error against the stage
        // time the predictor actually modelled (LD+ω), in percent.
        if let Some(predicted) = sub.request.predicted_seconds {
            let actual = per_job.ld_seconds + per_job.omega_seconds;
            if actual > 0.0 {
                let err_pct = ((predicted - actual).abs() / actual * 100.0) as u64;
                omega_obs::histogram!("serve.auto_error_pct").record(err_pct);
            }
        }
        let transfer_ns = (per_job.transfer_seconds * 1e9) as u64;
        if transfer_ns > 0 {
            omega_obs::histogram!("serve.transfer_ns").record(transfer_ns);
        }
        if let Some(trace) = &sub.trace {
            let kernel_span = trace.record_wall(
                "serve.kernel",
                trace.root_span(),
                trace.offset_of(run_start),
                kernel_ns,
            );
            if transfer_ns > 0 {
                // Modelled: simulator cost-model time, not contained in
                // the kernel span's wall clock.
                trace.record_modelled(
                    "serve.transfer",
                    kernel_span,
                    trace.offset_of(run_start),
                    transfer_ns,
                );
            }
        }
        let result = Arc::new(result_json(&per_job));
        let timing = timing_json(&per_job);
        let cache_key = CacheKey::new(
            sub.request.payload_digest,
            sub.request.params,
            sub.request.backend_label.clone(),
            sub.request.overlap,
            sub.request.shard,
        );
        let digest = key_digest(&cache_key);
        cache.insert(cache_key, Arc::clone(&result));
        table.update(sub.id, |r| {
            r.state = JobState::Done;
            r.result = Some(result);
            r.timing = Some(timing);
            job_latency_histogram(kind).record(r.submitted.elapsed().as_nanos() as u64);
        });
        // The terminal record lands *after* the result is durable in the
        // store (cache.insert writes through), so a recovered `done`
        // record can always rehydrate its bytes.
        if let Some(wal) = wal {
            wal.append_terminal(sub.id.0, JobState::Done, Some(digest));
        }
        finish_trace(sub, kind, JobState::Done);
    }
}

/// The lane worker loop: runs until the lanes drain dry. With a WAL
/// attached, every terminal transition appends a fsync'd `end` record
/// so a restart never re-runs finished work.
pub fn run_lane(
    kind: BackendKind,
    lanes: &Lanes,
    table: &JobTable,
    cache: &ResultCache,
    wal: Option<&Wal>,
) {
    let ctx = LaneCtx { table, cache, wal };
    let mut current: Option<LaneDetector> = None;
    while let Some(batch) = lanes.pop_batch(kind) {
        let pickup = Instant::now();
        for (key, members) in group_submissions(batch) {
            run_group(kind, &key, members, &mut current, &ctx, pickup);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::parse_scan_request;
    use crate::queue::Submission;

    fn request_body(positions: &str, grid: usize) -> String {
        let payload =
            format!("ms 4 1\n1\n\n//\nsegsites: 3\npositions: {positions}\n101\n010\n110\n001\n");
        format!("{{\"format\":\"ms\",\"payload\":{payload:?},\"params\":{{\"grid\":{grid}}}}}")
    }

    fn submit(lanes: &Lanes, table: &JobTable, body: &str) -> crate::job::JobId {
        let request = parse_scan_request(body).unwrap();
        let id = table.create(request.kind);
        lanes.submit(Submission { id, request, trace: None }).unwrap();
        id
    }

    #[test]
    fn grouping_coalesces_identical_configs_in_order() {
        let a = parse_scan_request(&request_body("0.1 0.4 0.8", 4)).unwrap();
        let b = parse_scan_request(&request_body("0.2 0.5 0.9", 4)).unwrap();
        let c = parse_scan_request(&request_body("0.1 0.4 0.8", 8)).unwrap();
        let groups = group_submissions(vec![
            Submission { id: crate::job::JobId(1), request: a, trace: None },
            Submission { id: crate::job::JobId(2), request: c, trace: None },
            Submission { id: crate::job::JobId(3), request: b, trace: None },
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 2, "same-config jobs coalesce");
        assert_eq!(groups[0].1[0].id, crate::job::JobId(1));
        assert_eq!(groups[0].1[1].id, crate::job::JobId(3));
    }

    #[test]
    fn worker_drains_and_completes_jobs() {
        let lanes = Lanes::with_capacity(8);
        let table = JobTable::default();
        let cache = ResultCache::with_capacity(1 << 20);
        let id1 = submit(&lanes, &table, &request_body("0.1 0.4 0.8", 4));
        let id2 = submit(&lanes, &table, &request_body("0.2 0.5 0.9", 4));
        lanes.begin_drain();
        run_lane(BackendKind::Cpu, &lanes, &table, &cache, None);
        for id in [id1, id2] {
            let record = table.get(id).unwrap();
            assert_eq!(record.state, JobState::Done, "{:?}", record.error);
            assert!(record.result.is_some());
            assert!(record.timing.is_some());
        }
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn expired_jobs_never_run() {
        let lanes = Lanes::with_capacity(8);
        let table = JobTable::default();
        let cache = ResultCache::with_capacity(1 << 20);
        let body = format!(
            "{{\"format\":\"ms\",\"payload\":{:?},\"deadline_ms\":0}}",
            "ms 4 1\n1\n\n//\nsegsites: 3\npositions: 0.1 0.4 0.8\n101\n010\n110\n001\n"
        );
        let id = submit(&lanes, &table, &body);
        std::thread::sleep(std::time::Duration::from_millis(5));
        lanes.begin_drain();
        run_lane(BackendKind::Cpu, &lanes, &table, &cache, None);
        let record = table.get(id).unwrap();
        assert_eq!(record.state, JobState::Expired);
        assert!(record.result.is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
