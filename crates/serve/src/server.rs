//! The daemon: TCP accept loop, routing, and lifecycle.
//!
//! Endpoints:
//!
//! * `POST /scan` — submit a job (JSON body; see [`crate::job`]). Cache
//!   hits complete immediately (200); misses queue (202); a full lane
//!   rejects with 429 + `Retry-After`; a draining daemon with 503.
//!   Sending an `X-Omega-Trace` header opts the request into tracing:
//!   the response echoes the trace context and the completed span tree
//!   lands in the flight recorder.
//! * `GET /jobs/<id>` — job state, result, and timing.
//! * `GET /stats` — the metrics registry (with exact bucket-boundary
//!   percentiles), queue and cache occupancy, and the serve instrument
//!   inventory, as JSON.
//! * `GET /metrics` — the same registry in Prometheus text exposition.
//! * `GET /traces` — flight-recorder index (most recent traces).
//! * `GET /traces/<hex-id>` — one completed trace's full span tree.
//! * `GET /healthz` — liveness, uptime, build info, per-lane depths.
//!
//! Shutdown is graceful by construction: [`ServeHandle::shutdown`] stops
//! admission first (new submissions get 503), then joins the lane
//! workers — which by the lane contract finish every admitted job —
//! and only then tears down the acceptor.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_obs::{JsonObject, RequestTrace, TraceContext};

use crate::cache::{CacheKey, ResultCache};
use crate::http::{
    write_chunked_response, write_response, HttpConn, HttpError, Request, CHUNKED_THRESHOLD_BYTES,
};
use crate::job::{job_json, parse_scan_request, BackendKind, JobId, JobLookup, JobState, JobTable};
use crate::job::{DEFAULT_RETAIN_FOR, DEFAULT_RETAIN_TERMINAL};
use crate::queue::{Lanes, Submission, SubmitError};
use crate::scheduler::run_lane;
use crate::store::ResultStore;
use crate::wal::{RecoveredState, Wal};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Per-lane queue capacity (admission-control bound).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_capacity_bytes: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// `Retry-After` hint (seconds) on 429 responses.
    pub retry_after_secs: u64,
    /// Start with lanes paused (accept-and-hold; tests and maintenance).
    pub start_paused: bool,
    /// Flight-recorder capacity (completed traces held for `/traces`;
    /// 0 disables capture).
    pub trace_capacity: usize,
    /// Trace every request, not just those sending `X-Omega-Trace`.
    pub trace_all: bool,
    /// Durability root (`-data-dir`): holds the write-ahead job log and
    /// the on-disk result store. `None` runs fully in-memory.
    pub data_dir: Option<PathBuf>,
    /// Cap on retained terminal job records.
    pub retain_jobs: usize,
    /// Age bound on retained terminal job records.
    pub retain_job_secs: u64,
    /// Stable worker identity surfaced in `/healthz` (`-worker-id`).
    /// A cluster coordinator uses it to tell workers apart across
    /// restarts and address changes; empty means standalone.
    pub worker_id: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            queue_capacity: 64,
            cache_capacity_bytes: 32 << 20,
            max_body_bytes: 8 << 20,
            retry_after_secs: 1,
            start_paused: false,
            trace_capacity: 256,
            trace_all: false,
            data_dir: None,
            retain_jobs: DEFAULT_RETAIN_TERMINAL,
            retain_job_secs: DEFAULT_RETAIN_FOR.as_secs(),
            worker_id: String::new(),
        }
    }
}

struct Shared {
    lanes: Lanes,
    table: JobTable,
    cache: ResultCache,
    wal: Option<Wal>,
    config: ServeConfig,
    shutting_down: AtomicBool,
    started: Instant,
}

/// Touches every serve instrument once so `/stats` always lists the
/// full inventory, even before the first request.
fn register_instruments() {
    omega_obs::counter!("serve.jobs").add(0);
    omega_obs::counter!("serve.rejected").add(0);
    omega_obs::counter!("serve.cache_hits").add(0);
    omega_obs::counter!("serve.cache_misses").add(0);
    omega_obs::counter!("serve.cache_evictions").add(0);
    omega_obs::counter!("serve.auto_routed").add(0);
    omega_obs::counter!("serve.auto_routed.cpu").add(0);
    omega_obs::counter!("serve.auto_routed.gpu").add(0);
    omega_obs::counter!("serve.auto_routed.fpga").add(0);
    omega_obs::counter!("serve.http_conn_reuses").add(0);
    omega_obs::counter!("serve.jobs_evicted").add(0);
    omega_obs::counter!("serve.jobs_recovered").add(0);
    omega_obs::counter!("serve.store_errors").add(0);
    omega_obs::counter!("serve.store_hits").add(0);
    omega_obs::counter!("serve.store_misses").add(0);
    omega_obs::counter!("serve.store_rehydrated").add(0);
    omega_obs::counter!("serve.store_writes").add(0);
    omega_obs::counter!("serve.wal_appends").add(0);
    omega_obs::counter!("serve.wal_compactions").add(0);
    omega_obs::counter!("serve.wal_corrupt_skipped").add(0);
    omega_obs::counter!("serve.wal_errors").add(0);
    omega_obs::counter!("serve.wal_replayed").add(0);
    omega_obs::counter!("obs.trace.completed").add(0);
    omega_obs::counter!("obs.trace.dropped").add(0);
    omega_obs::gauge!("serve.queue_depth").set(0);
    omega_obs::gauge!("serve.store_bytes").set(0);
    omega_obs::gauge!("serve.wal_bytes").set(0);
    let _ = omega_obs::histogram!("serve.wal_fsync_ns");
    let _ = omega_obs::histogram!("serve.batch_size");
    let _ = omega_obs::histogram!("serve.latency.cpu");
    let _ = omega_obs::histogram!("serve.latency.gpu");
    let _ = omega_obs::histogram!("serve.latency.fpga");
    let _ = omega_obs::histogram!("serve.queue_wait_ns");
    let _ = omega_obs::histogram!("serve.coalesce_ns");
    let _ = omega_obs::histogram!("serve.kernel_ns");
    let _ = omega_obs::histogram!("serve.kernel_ns.cpu");
    let _ = omega_obs::histogram!("serve.kernel_ns.gpu");
    let _ = omega_obs::histogram!("serve.kernel_ns.fpga");
    let _ = omega_obs::histogram!("serve.transfer_ns");
    let _ = omega_obs::histogram!("serve.cache_lookup_ns");
    let _ = omega_obs::histogram!("serve.auto_predict_ns");
    let _ = omega_obs::histogram!("serve.auto_error_pct");
}

/// Renders `/stats`: the full metrics snapshot plus daemon-local
/// occupancy figures and the serve instrument inventory.
fn stats_json(shared: &Shared) -> String {
    let snap = omega_obs::snapshot();
    let mut counters = JsonObject::new();
    for (name, v) in &snap.counters {
        counters = counters.u64(name, *v);
    }
    let mut gauges = JsonObject::new();
    for (name, v) in &snap.gauges {
        gauges = gauges.raw(name, &v.to_string());
    }
    let mut histograms = JsonObject::new();
    for (name, h) in &snap.histograms {
        let entry = JsonObject::new()
            .u64("count", h.count())
            .u64("sum", h.sum)
            .f64("mean", h.mean())
            .u64("p50", h.percentile(50.0))
            .u64("p90", h.percentile(90.0))
            .u64("p95", h.percentile(95.0))
            .u64("p99", h.percentile(99.0))
            .u64_array("buckets", h.counts.iter().copied())
            .finish();
        histograms = histograms.raw(name, &entry);
    }
    let queue = JsonObject::new()
        .u64("depth", shared.lanes.depth() as u64)
        .u64("capacity_per_lane", shared.lanes.capacity() as u64)
        .raw("draining", if shared.lanes.is_draining() { "true" } else { "false" })
        .finish();
    let cache_stats = shared.cache.stats();
    let cache = JsonObject::new()
        .u64("bytes", cache_stats.bytes as u64)
        .u64("capacity_bytes", cache_stats.capacity_bytes as u64)
        .u64("entries", cache_stats.entries as u64)
        .finish();
    let persistence = match (&shared.wal, shared.cache.store()) {
        (Some(wal), Some(store)) => JsonObject::new()
            .raw("enabled", "true")
            .u64("wal_bytes", wal.bytes())
            .u64("wal_live_jobs", wal.live_jobs() as u64)
            .u64("store_bytes", store.bytes())
            .finish(),
        _ => JsonObject::new().raw("enabled", "false").finish(),
    };
    let mut instruments = String::from("[");
    for (i, name) in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")).enumerate() {
        if i > 0 {
            instruments.push(',');
        }
        instruments.push('"');
        instruments.push_str(name);
        instruments.push('"');
    }
    instruments.push(']');
    JsonObject::new()
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish())
        .raw("queue", &queue)
        .raw("cache", &cache)
        .raw("persistence", &persistence)
        .raw("instruments", &instruments)
        .finish()
}

fn error_body(message: &str) -> String {
    JsonObject::new().string("error", message).finish()
}

/// One routed response, ready to serialise.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, body: String) -> Response {
        Response { status, reason, content_type: "application/json", headers: Vec::new(), body }
    }

    fn not_found(message: &str) -> Response {
        Response::json(404, "Not Found", error_body(message))
    }
}

/// Renders `/healthz`: liveness plus uptime, build identity, and the
/// current per-lane queue depths.
fn healthz_json(shared: &Shared) -> String {
    let mut queues = JsonObject::new();
    for kind in BackendKind::ALL {
        queues = queues.u64(kind.as_str(), shared.lanes.depth_of(kind) as u64);
    }
    let build = JsonObject::new()
        .string("name", env!("CARGO_PKG_NAME"))
        .string("version", env!("CARGO_PKG_VERSION"))
        .finish();
    JsonObject::new()
        .string("status", "ok")
        .string("worker_id", &shared.config.worker_id)
        .u64("uptime_secs", shared.started.elapsed().as_secs())
        .raw("build", &build)
        .raw("queue_depths", &queues.finish())
        .raw("draining", if shared.lanes.is_draining() { "true" } else { "false" })
        .finish()
}

/// Renders the `/traces` flight-recorder index, most recent last.
fn traces_index_json() -> String {
    let recorder = omega_obs::recorder();
    let traces = recorder.recent(usize::MAX);
    let mut list = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            list.push(',');
        }
        list.push_str(&t.summary_json());
    }
    list.push(']');
    JsonObject::new()
        .u64("count", traces.len() as u64)
        .u64("capacity", recorder.capacity() as u64)
        .raw("traces", &list)
        .finish()
}

/// Routes one parsed request.
fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "OK", healthz_json(shared)),
        ("GET", "/stats") => Response::json(200, "OK", stats_json(shared)),
        ("GET", "/metrics") => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: omega_obs::render_prometheus(&omega_obs::snapshot()),
        },
        ("GET", "/traces") => Response::json(200, "OK", traces_index_json()),
        ("POST", "/scan") => handle_scan(shared, request),
        ("GET", path) if path.starts_with("/traces/") => {
            let id_text = &path["/traces/".len()..];
            match u64::from_str_radix(id_text, 16).ok().and_then(|id| omega_obs::recorder().get(id))
            {
                Some(trace) => Response::json(200, "OK", trace.json()),
                None => Response::not_found(&format!("no trace {id_text:?}")),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let id_text = &path["/jobs/".len()..];
            match JobId::parse(id_text) {
                Some(id) => match shared.table.lookup(id) {
                    JobLookup::Found(record) => Response::json(200, "OK", job_json(id, &record)),
                    // The id was real but its record aged out of bounded
                    // retention: "polled too late", not "never existed".
                    JobLookup::Evicted => Response::json(
                        410,
                        "Gone",
                        error_body(&format!("job {id_text} has been evicted from retention")),
                    ),
                    JobLookup::Unknown => Response::not_found(&format!("no job {id_text:?}")),
                },
                None => Response::not_found(&format!("no job {id_text:?}")),
            }
        }
        ("POST" | "GET", _) => Response::not_found("unknown path"),
        _ => {
            Response::json(405, "Method Not Allowed", error_body("only GET and POST are supported"))
        }
    }
}

fn handle_scan(shared: &Shared, http_request: &Request) -> Response {
    let text = match std::str::from_utf8(&http_request.body) {
        Ok(t) => t,
        Err(_) => return Response::json(400, "Bad Request", error_body("body is not UTF-8")),
    };
    let request = match parse_scan_request(text) {
        Ok(r) => r,
        Err(e) => return Response::json(400, "Bad Request", error_body(&e.to_string())),
    };

    // Tracing is opt-in: any X-Omega-Trace header (or trace_all) starts
    // a request trace; a well-formed header additionally joins the
    // caller's trace id and parent span.
    let inbound = http_request.trace_header.as_deref().and_then(TraceContext::parse);
    let trace = (http_request.trace_header.is_some() || shared.config.trace_all)
        .then(|| RequestTrace::begin("serve.request", inbound));
    let trace_headers = |t: &Option<Arc<RequestTrace>>| -> Vec<(&'static str, String)> {
        t.iter().map(|t| ("X-Omega-Trace", t.context().header_value())).collect()
    };

    let key = CacheKey::new(
        request.payload_digest,
        request.params,
        request.backend_label.clone(),
        request.overlap,
        request.shard,
    );
    let lookup_started = Instant::now();
    // `"cache":"bypass"` skips the lookup but not the insert: the fresh
    // result still lands in the cache for later `"cache":"use"` callers.
    // Benchmarks use it to measure compute, not cache hits.
    let cached = if request.cache_bypass { None } else { shared.cache.get(&key) };
    let lookup_ns = lookup_started.elapsed().as_nanos() as u64;
    omega_obs::histogram!("serve.cache_lookup_ns").record(lookup_ns);
    if let Some(t) = &trace {
        t.record_wall("serve.cache_lookup", t.root_span(), t.offset_of(lookup_started), lookup_ns);
        t.annotate("cache", if cached.is_some() { "hit" } else { "miss" });
        t.annotate("backend", request.kind.as_str());
    }

    if let Some(result) = cached {
        let id = shared.table.create_cached(request.kind, result);
        // Cache hits complete inline and are not individually logged;
        // an amortised id reservation (one fsync per block) is enough
        // to keep a restarted daemon from re-issuing this id.
        if let Some(wal) = &shared.wal {
            wal.reserve_id(id.0);
        }
        if let Some(t) = &trace {
            shared.table.update(id, |r| r.trace_id = Some(t.trace_id()));
            t.annotate("job", &id.to_string());
            t.annotate("state", "done");
            t.finish();
        }
        let body = match shared.table.get(id) {
            Some(r) => job_json(id, &r),
            None => error_body("job record vanished"),
        };
        return Response { headers: trace_headers(&trace), ..Response::json(200, "OK", body) };
    }

    let id = shared.table.create(request.kind);
    if let Some(t) = &trace {
        shared.table.update(id, |r| r.trace_id = Some(t.trace_id()));
    }
    match shared.lanes.submit(Submission { id, request, trace: trace.clone() }) {
        Ok(()) => {
            // The admit record is fsync'd *before* the 202 goes out:
            // once the client holds the job id, a crash cannot lose the
            // job. Rejected submissions (below) are never logged.
            if let Some(wal) = &shared.wal {
                wal.append_admit(id.0, text);
            }
            let body = match shared.table.get(id) {
                Some(r) => job_json(id, &r),
                None => error_body("job record vanished"),
            };
            Response { headers: trace_headers(&trace), ..Response::json(202, "Accepted", body) }
        }
        Err(SubmitError::QueueFull { queued, capacity }) => {
            shared.table.remove(id);
            if let Some(t) = &trace {
                t.annotate("state", "rejected");
                t.finish();
            }
            let retry = shared.config.retry_after_secs.max(1);
            let body = JsonObject::new()
                .string("error", "queue full")
                .u64("queued", queued as u64)
                .u64("capacity", capacity as u64)
                .u64("retry_after_secs", retry)
                .finish();
            let mut headers = trace_headers(&trace);
            headers.push(("Retry-After", retry.to_string()));
            Response { headers, ..Response::json(429, "Too Many Requests", body) }
        }
        Err(SubmitError::Draining) => {
            shared.table.remove(id);
            if let Some(t) = &trace {
                t.annotate("state", "rejected");
                t.finish();
            }
            Response {
                headers: trace_headers(&trace),
                ..Response::json(503, "Service Unavailable", error_body("daemon is draining"))
            }
        }
    }
}

/// Serves one connection until the peer closes, asks to close, a
/// request errors, or the daemon shuts down. HTTP/1.1 requests keep the
/// connection alive between requests (loadgen's replay phase reuses one
/// connection per client, which is where the per-request TCP handshake
/// used to dominate). Large bodies stream out chunked.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // A stalled peer must not pin a handler thread forever; on an idle
    // keep-alive connection the timeout reads as a clean close.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // Nagle + delayed ACK stalls keep-alive round-trips by ~40 ms when
    // a response crosses two writes (head, then body).
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream);
    let mut served: u64 = 0;
    loop {
        let request = {
            let _span = omega_obs::span!("serve.request");
            conn.read_request(shared.config.max_body_bytes)
        };
        match request {
            Ok(Some(request)) => {
                if served > 0 {
                    omega_obs::counter!("serve.http_conn_reuses").inc();
                }
                served += 1;
                let keep_alive = request.keep_alive && !shared.shutting_down.load(Ordering::SeqCst);
                let response = route(shared, &request);
                let use_chunked = request.http11 && response.body.len() >= CHUNKED_THRESHOLD_BYTES;
                let written = if use_chunked {
                    write_chunked_response(
                        conn.stream_mut(),
                        response.status,
                        response.reason,
                        response.content_type,
                        &response.headers,
                        &response.body,
                        keep_alive,
                    )
                } else {
                    write_response(
                        conn.stream_mut(),
                        response.status,
                        response.reason,
                        response.content_type,
                        &response.headers,
                        &response.body,
                        keep_alive,
                    )
                };
                if written.is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(e @ HttpError::Io(_)) => {
                // Socket already broken; nothing useful to write.
                let _ = e;
                return;
            }
            Err(e) => {
                // Parse errors poison the framing (we cannot know where
                // the next request starts), so the connection closes.
                let (status, reason) = e.status();
                let _ = write_response(
                    conn.stream_mut(),
                    status,
                    reason,
                    "application/json",
                    &[],
                    &error_body(&e.detail()),
                    false,
                );
                return;
            }
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the daemon;
/// call [`ServeHandle::shutdown`] (or let the process exit).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Holds queued work (admission continues). See [`Lanes::pause`].
    pub fn pause(&self) {
        self.shared.lanes.pause();
    }

    /// Releases held work.
    pub fn resume(&self) {
        self.shared.lanes.resume();
    }

    /// Total queued jobs across lanes.
    pub fn queue_depth(&self) -> usize {
        self.shared.lanes.depth()
    }

    /// Graceful shutdown: reject new work, finish every admitted job,
    /// then stop accepting. Returns the drain report — every job's
    /// final state — once all threads have exited.
    pub fn shutdown(mut self) -> Vec<(crate::job::JobId, crate::job::JobState)> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.lanes.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection, then reap it.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.table.states()
    }

    /// Blocks on the accept loop (daemon mode: runs until the process
    /// is killed).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Simulated crash for recovery tests: stops the lane workers
    /// *immediately* (queued jobs stay queued — and, with a WAL, stay
    /// recoverable) and tears down the acceptor without draining.
    /// Unlike [`ServeHandle::shutdown`], admitted work is abandoned,
    /// exactly as `kill -9` would abandon it.
    pub fn abort(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.lanes.poison();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Rebuilds daemon state from a WAL replay: queued jobs re-enter their
/// lanes (bypassing admission — they were already acknowledged),
/// finished jobs get their records back (results rehydrated from the
/// store, byte-identical to the pre-crash response), and the id
/// allocator is advanced past every id a pre-crash client could hold.
fn recover(shared: &Shared, store: &ResultStore, replay: crate::wal::Replay) {
    shared.table.reserve_through(replay.next_id.saturating_sub(1));
    let mut recovered = 0u64;
    for job in replay.jobs {
        let id = JobId(job.id);
        match job.state {
            RecoveredState::Queued => match parse_scan_request(&job.body) {
                Ok(request) => {
                    shared.table.create_with_id(id, request.kind);
                    shared.lanes.restore(Submission { id, request, trace: None });
                    recovered += 1;
                }
                Err(e) => {
                    // A body that parsed pre-crash but not now means the
                    // log is damaged; fail the job visibly instead of
                    // dropping it silently.
                    shared.table.create_with_id(id, BackendKind::Cpu);
                    shared.table.update(id, |r| {
                        r.state = JobState::Failed;
                        r.error = Some(format!("recovered job body no longer parses: {e}"));
                    });
                    if let Some(wal) = &shared.wal {
                        wal.append_terminal(id.0, JobState::Failed, None);
                    }
                }
            },
            RecoveredState::Done { key } => {
                let kind =
                    parse_scan_request(&job.body).map(|r| r.kind).unwrap_or(BackendKind::Cpu);
                shared.table.create_with_id(id, kind);
                match store.read_by_digest(key) {
                    Some((_, value)) => {
                        shared.table.update(id, |r| {
                            r.state = JobState::Done;
                            r.result = Some(value);
                        });
                        recovered += 1;
                    }
                    None => {
                        shared.table.update(id, |r| {
                            r.state = JobState::Failed;
                            r.error = Some("result bytes did not survive the restart".to_string());
                        });
                    }
                }
            }
            RecoveredState::Failed => {
                shared.table.create_with_id(id, BackendKind::Cpu);
                shared.table.update(id, |r| {
                    r.state = JobState::Failed;
                    r.error = Some("failed before the restart".to_string());
                });
            }
            RecoveredState::Expired => {
                shared.table.create_with_id(id, BackendKind::Cpu);
                shared.table.update(id, |r| {
                    r.state = JobState::Expired;
                    r.error = Some("expired before the restart".to_string());
                });
            }
        }
    }
    if recovered > 0 {
        omega_obs::counter!("serve.jobs_recovered").add(recovered);
    }
}

/// Boots the daemon: binds, opens the durability layer (when
/// configured), replays the write-ahead log, spawns the three lane
/// workers and the acceptor, and returns a handle.
pub fn start(config: ServeConfig) -> io::Result<ServeHandle> {
    register_instruments();
    omega_obs::recorder().set_capacity(config.trace_capacity);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    // Durability boots before the first connection is accepted, so a
    // recovered job can never race a fresh submission for its id.
    let mut wal = None;
    let mut replay = None;
    let mut store = None;
    if let Some(dir) = &config.data_dir {
        std::fs::create_dir_all(dir)?;
        let s = Arc::new(ResultStore::open(&dir.join("store"))?);
        let (w, r) = Wal::open_and_replay(&dir.join("jobs.wal"))?;
        store = Some(s);
        wal = Some(w);
        replay = Some(r);
    }
    let cache = match &store {
        Some(s) => ResultCache::with_store(config.cache_capacity_bytes, Arc::clone(s)),
        None => ResultCache::with_capacity(config.cache_capacity_bytes),
    };

    let shared = Arc::new(Shared {
        lanes: Lanes::with_capacity(config.queue_capacity),
        table: JobTable::with_retention(
            config.retain_jobs,
            Duration::from_secs(config.retain_job_secs),
        ),
        cache,
        wal,
        config: config.clone(),
        shutting_down: AtomicBool::new(false),
        started: Instant::now(),
    });
    if let (Some(store), Some(replay)) = (&store, replay) {
        shared.cache.rehydrate();
        recover(&shared, store, replay);
        if let Some(wal) = &shared.wal {
            // Recovery replays terminal records too; compacting now
            // bounds the next boot's replay to the live set.
            wal.compact();
        }
    }
    if config.start_paused {
        shared.lanes.pause();
    }

    let mut workers = Vec::new();
    for kind in BackendKind::ALL {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new().name(format!("serve-lane-{}", kind.as_str())).spawn(
                move || {
                    run_lane(kind, &shared.lanes, &shared.table, &shared.cache, shared.wal.as_ref())
                },
            )?,
        );
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor =
        std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let shared = Arc::clone(&acceptor_shared);
                        let spawned = std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                        if spawned.is_err() {
                            // Thread exhaustion: shed load rather than die.
                            continue;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })?;

    Ok(ServeHandle { addr, shared, acceptor: Some(acceptor), workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_capacity > 0);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.max_body_bytes > 0);
    }

    #[test]
    fn stats_json_is_valid_and_lists_serve_instruments() {
        register_instruments();
        let shared = Shared {
            lanes: Lanes::with_capacity(4),
            table: JobTable::default(),
            cache: ResultCache::with_capacity(1024),
            wal: None,
            config: ServeConfig::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
        };
        let json = stats_json(&shared);
        let v = omega_obs::parse_json(&json).unwrap();
        let instruments = v.get("instruments").unwrap().as_array().unwrap();
        let listed: Vec<&str> = instruments.iter().filter_map(|x| x.as_str()).collect();
        for name in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")) {
            assert!(listed.contains(name), "{name} missing from /stats instruments");
        }
        assert!(v.get("counters").unwrap().get("serve.jobs").is_some());
        assert!(v.get("queue").unwrap().get("capacity_per_lane").is_some());
        assert!(v.get("cache").unwrap().get("capacity_bytes").is_some());
        let batch = v.get("histograms").unwrap().get("serve.batch_size").unwrap();
        for pct in ["p50", "p90", "p95", "p99"] {
            assert!(batch.get(pct).is_some(), "{pct} missing from histogram entry");
        }
    }

    #[test]
    fn healthz_reports_uptime_build_and_depths() {
        register_instruments();
        let shared = Shared {
            lanes: Lanes::with_capacity(4),
            table: JobTable::default(),
            cache: ResultCache::with_capacity(1024),
            wal: None,
            config: ServeConfig::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
        };
        let v = omega_obs::parse_json(&healthz_json(&shared)).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert!(v.get("uptime_secs").unwrap().as_u64().is_some());
        assert!(v.get("build").unwrap().get("version").unwrap().as_str().is_some());
        let depths = v.get("queue_depths").unwrap();
        for lane in ["cpu", "gpu", "fpga"] {
            assert_eq!(depths.get(lane).unwrap().as_u64(), Some(0));
        }
    }
}
