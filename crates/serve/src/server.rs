//! The daemon: TCP accept loop, routing, and lifecycle.
//!
//! Endpoints:
//!
//! * `POST /scan` — submit a job (JSON body; see [`crate::job`]). Cache
//!   hits complete immediately (200); misses queue (202); a full lane
//!   rejects with 429 + `Retry-After`; a draining daemon with 503.
//! * `GET /jobs/<id>` — job state, result, and timing.
//! * `GET /stats` — the metrics registry, queue and cache occupancy,
//!   and the serve instrument inventory, as JSON.
//! * `GET /healthz` — liveness.
//!
//! Shutdown is graceful by construction: [`ServeHandle::shutdown`] stops
//! admission first (new submissions get 503), then joins the lane
//! workers — which by the lane contract finish every admitted job —
//! and only then tears down the acceptor.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use omega_obs::JsonObject;

use crate::cache::{CacheKey, ResultCache};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::job::{job_json, parse_scan_request, BackendKind, JobId, JobTable};
use crate::queue::{Lanes, Submission, SubmitError};
use crate::scheduler::run_lane;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Per-lane queue capacity (admission-control bound).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_capacity_bytes: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// `Retry-After` hint (seconds) on 429 responses.
    pub retry_after_secs: u64,
    /// Start with lanes paused (accept-and-hold; tests and maintenance).
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            queue_capacity: 64,
            cache_capacity_bytes: 32 << 20,
            max_body_bytes: 8 << 20,
            retry_after_secs: 1,
            start_paused: false,
        }
    }
}

struct Shared {
    lanes: Lanes,
    table: JobTable,
    cache: ResultCache,
    config: ServeConfig,
    shutting_down: AtomicBool,
}

/// Touches every serve instrument once so `/stats` always lists the
/// full inventory, even before the first request.
fn register_instruments() {
    omega_obs::counter!("serve.jobs").add(0);
    omega_obs::counter!("serve.rejected").add(0);
    omega_obs::counter!("serve.cache_hits").add(0);
    omega_obs::counter!("serve.cache_misses").add(0);
    omega_obs::counter!("serve.cache_evictions").add(0);
    omega_obs::gauge!("serve.queue_depth").set(0);
    let _ = omega_obs::histogram!("serve.batch_size");
    let _ = omega_obs::histogram!("serve.latency.cpu");
    let _ = omega_obs::histogram!("serve.latency.gpu");
    let _ = omega_obs::histogram!("serve.latency.fpga");
}

/// Renders `/stats`: the full metrics snapshot plus daemon-local
/// occupancy figures and the serve instrument inventory.
fn stats_json(shared: &Shared) -> String {
    let snap = omega_obs::snapshot();
    let mut counters = JsonObject::new();
    for (name, v) in &snap.counters {
        counters = counters.u64(name, *v);
    }
    let mut gauges = JsonObject::new();
    for (name, v) in &snap.gauges {
        gauges = gauges.raw(name, &v.to_string());
    }
    let mut histograms = JsonObject::new();
    for (name, h) in &snap.histograms {
        let entry = JsonObject::new()
            .u64("count", h.count())
            .u64("sum", h.sum)
            .f64("mean", h.mean())
            .u64_array("buckets", h.counts.iter().copied())
            .finish();
        histograms = histograms.raw(name, &entry);
    }
    let queue = JsonObject::new()
        .u64("depth", shared.lanes.depth() as u64)
        .u64("capacity_per_lane", shared.lanes.capacity() as u64)
        .raw("draining", if shared.lanes.is_draining() { "true" } else { "false" })
        .finish();
    let cache_stats = shared.cache.stats();
    let cache = JsonObject::new()
        .u64("bytes", cache_stats.bytes as u64)
        .u64("capacity_bytes", cache_stats.capacity_bytes as u64)
        .u64("entries", cache_stats.entries as u64)
        .finish();
    let mut instruments = String::from("[");
    for (i, name) in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")).enumerate() {
        if i > 0 {
            instruments.push(',');
        }
        instruments.push('"');
        instruments.push_str(name);
        instruments.push('"');
    }
    instruments.push(']');
    JsonObject::new()
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish())
        .raw("queue", &queue)
        .raw("cache", &cache)
        .raw("instruments", &instruments)
        .finish()
}

fn error_body(message: &str) -> String {
    JsonObject::new().string("error", message).finish()
}

/// Routes one parsed request. Returns (status, reason, extra headers,
/// body).
fn route(
    shared: &Shared,
    request: &Request,
) -> (u16, &'static str, Vec<(&'static str, String)>, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            (200, "OK", vec![], JsonObject::new().string("status", "ok").finish())
        }
        ("GET", "/stats") => (200, "OK", vec![], stats_json(shared)),
        ("POST", "/scan") => handle_scan(shared, &request.body),
        ("GET", path) if path.starts_with("/jobs/") => {
            let id_text = &path["/jobs/".len()..];
            match JobId::parse(id_text).and_then(|id| shared.table.get(id).map(|r| (id, r))) {
                Some((id, record)) => (200, "OK", vec![], job_json(id, &record)),
                None => (404, "Not Found", vec![], error_body(&format!("no job {id_text:?}"))),
            }
        }
        ("POST" | "GET", _) => (404, "Not Found", vec![], error_body("unknown path")),
        _ => (405, "Method Not Allowed", vec![], error_body("only GET and POST are supported")),
    }
}

fn handle_scan(
    shared: &Shared,
    body: &[u8],
) -> (u16, &'static str, Vec<(&'static str, String)>, String) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, "Bad Request", vec![], error_body("body is not UTF-8")),
    };
    let request = match parse_scan_request(text) {
        Ok(r) => r,
        Err(e) => return (400, "Bad Request", vec![], error_body(&e.to_string())),
    };

    let key = CacheKey::new(
        request.payload_digest,
        request.params,
        request.backend_label.clone(),
        request.overlap,
    );
    if let Some(result) = shared.cache.get(&key) {
        let id = shared.table.create_cached(request.kind, result);
        let record = shared.table.get(id);
        let body = match record {
            Some(r) => job_json(id, &r),
            None => error_body("job record vanished"),
        };
        return (200, "OK", vec![], body);
    }

    let id = shared.table.create(request.kind);
    match shared.lanes.submit(Submission { id, request }) {
        Ok(()) => {
            let body = match shared.table.get(id) {
                Some(r) => job_json(id, &r),
                None => error_body("job record vanished"),
            };
            (202, "Accepted", vec![], body)
        }
        Err(SubmitError::QueueFull { queued, capacity }) => {
            shared.table.remove(id);
            let retry = shared.config.retry_after_secs.max(1);
            let body = JsonObject::new()
                .string("error", "queue full")
                .u64("queued", queued as u64)
                .u64("capacity", capacity as u64)
                .u64("retry_after_secs", retry)
                .finish();
            (429, "Too Many Requests", vec![("Retry-After", retry.to_string())], body)
        }
        Err(SubmitError::Draining) => {
            shared.table.remove(id);
            (503, "Service Unavailable", vec![], error_body("daemon is draining"))
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _span = omega_obs::span!("serve.request");
    // A stalled peer must not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(Some(request)) => {
            let (status, reason, headers, body) = route(shared, &request);
            let _ = write_response(&mut stream, status, reason, &headers, &body);
        }
        Ok(None) => {}
        Err(e @ HttpError::Io(_)) => {
            // Socket already broken; nothing useful to write.
            let _ = e;
        }
        Err(e) => {
            let (status, reason) = e.status();
            let _ = write_response(&mut stream, status, reason, &[], &error_body(&e.detail()));
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the daemon;
/// call [`ServeHandle::shutdown`] (or let the process exit).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Holds queued work (admission continues). See [`Lanes::pause`].
    pub fn pause(&self) {
        self.shared.lanes.pause();
    }

    /// Releases held work.
    pub fn resume(&self) {
        self.shared.lanes.resume();
    }

    /// Total queued jobs across lanes.
    pub fn queue_depth(&self) -> usize {
        self.shared.lanes.depth()
    }

    /// Graceful shutdown: reject new work, finish every admitted job,
    /// then stop accepting. Returns the drain report — every job's
    /// final state — once all threads have exited.
    pub fn shutdown(mut self) -> Vec<(crate::job::JobId, crate::job::JobState)> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.lanes.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection, then reap it.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.table.states()
    }

    /// Blocks on the accept loop (daemon mode: runs until the process
    /// is killed).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Boots the daemon: binds, spawns the three lane workers and the
/// acceptor, and returns a handle.
pub fn start(config: ServeConfig) -> io::Result<ServeHandle> {
    register_instruments();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        lanes: Lanes::with_capacity(config.queue_capacity),
        table: JobTable::default(),
        cache: ResultCache::with_capacity(config.cache_capacity_bytes),
        config: config.clone(),
        shutting_down: AtomicBool::new(false),
    });
    if config.start_paused {
        shared.lanes.pause();
    }

    let mut workers = Vec::new();
    for kind in BackendKind::ALL {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-lane-{}", kind.as_str()))
                .spawn(move || run_lane(kind, &shared.lanes, &shared.table, &shared.cache))?,
        );
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor =
        std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let shared = Arc::clone(&acceptor_shared);
                        let spawned = std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                        if spawned.is_err() {
                            // Thread exhaustion: shed load rather than die.
                            continue;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })?;

    Ok(ServeHandle { addr, shared, acceptor: Some(acceptor), workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_capacity > 0);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.max_body_bytes > 0);
    }

    #[test]
    fn stats_json_is_valid_and_lists_serve_instruments() {
        register_instruments();
        let shared = Shared {
            lanes: Lanes::with_capacity(4),
            table: JobTable::default(),
            cache: ResultCache::with_capacity(1024),
            config: ServeConfig::default(),
            shutting_down: AtomicBool::new(false),
        };
        let json = stats_json(&shared);
        let v = omega_obs::parse_json(&json).unwrap();
        let instruments = v.get("instruments").unwrap().as_array().unwrap();
        let listed: Vec<&str> = instruments.iter().filter_map(|x| x.as_str()).collect();
        for name in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")) {
            assert!(listed.contains(name), "{name} missing from /stats instruments");
        }
        assert!(v.get("counters").unwrap().get("serve.jobs").is_some());
        assert!(v.get("queue").unwrap().get("capacity_per_lane").is_some());
        assert!(v.get("cache").unwrap().get("capacity_bytes").is_some());
    }
}
