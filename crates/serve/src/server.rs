//! The daemon: TCP accept loop, routing, and lifecycle.
//!
//! Endpoints:
//!
//! * `POST /scan` — submit a job (JSON body; see [`crate::job`]). Cache
//!   hits complete immediately (200); misses queue (202); a full lane
//!   rejects with 429 + `Retry-After`; a draining daemon with 503.
//!   Sending an `X-Omega-Trace` header opts the request into tracing:
//!   the response echoes the trace context and the completed span tree
//!   lands in the flight recorder.
//! * `GET /jobs/<id>` — job state, result, and timing.
//! * `GET /stats` — the metrics registry (with exact bucket-boundary
//!   percentiles), queue and cache occupancy, and the serve instrument
//!   inventory, as JSON.
//! * `GET /metrics` — the same registry in Prometheus text exposition.
//! * `GET /traces` — flight-recorder index (most recent traces).
//! * `GET /traces/<hex-id>` — one completed trace's full span tree.
//! * `GET /healthz` — liveness, uptime, build info, per-lane depths.
//!
//! Shutdown is graceful by construction: [`ServeHandle::shutdown`] stops
//! admission first (new submissions get 503), then joins the lane
//! workers — which by the lane contract finish every admitted job —
//! and only then tears down the acceptor.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_obs::{JsonObject, RequestTrace, TraceContext};

use crate::cache::{CacheKey, ResultCache};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::job::{job_json, parse_scan_request, BackendKind, JobId, JobTable};
use crate::queue::{Lanes, Submission, SubmitError};
use crate::scheduler::run_lane;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Per-lane queue capacity (admission-control bound).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_capacity_bytes: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// `Retry-After` hint (seconds) on 429 responses.
    pub retry_after_secs: u64,
    /// Start with lanes paused (accept-and-hold; tests and maintenance).
    pub start_paused: bool,
    /// Flight-recorder capacity (completed traces held for `/traces`;
    /// 0 disables capture).
    pub trace_capacity: usize,
    /// Trace every request, not just those sending `X-Omega-Trace`.
    pub trace_all: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            queue_capacity: 64,
            cache_capacity_bytes: 32 << 20,
            max_body_bytes: 8 << 20,
            retry_after_secs: 1,
            start_paused: false,
            trace_capacity: 256,
            trace_all: false,
        }
    }
}

struct Shared {
    lanes: Lanes,
    table: JobTable,
    cache: ResultCache,
    config: ServeConfig,
    shutting_down: AtomicBool,
    started: Instant,
}

/// Touches every serve instrument once so `/stats` always lists the
/// full inventory, even before the first request.
fn register_instruments() {
    omega_obs::counter!("serve.jobs").add(0);
    omega_obs::counter!("serve.rejected").add(0);
    omega_obs::counter!("serve.cache_hits").add(0);
    omega_obs::counter!("serve.cache_misses").add(0);
    omega_obs::counter!("serve.cache_evictions").add(0);
    omega_obs::counter!("serve.auto_routed").add(0);
    omega_obs::counter!("serve.auto_routed.cpu").add(0);
    omega_obs::counter!("serve.auto_routed.gpu").add(0);
    omega_obs::counter!("serve.auto_routed.fpga").add(0);
    omega_obs::counter!("obs.trace.completed").add(0);
    omega_obs::counter!("obs.trace.dropped").add(0);
    omega_obs::gauge!("serve.queue_depth").set(0);
    let _ = omega_obs::histogram!("serve.batch_size");
    let _ = omega_obs::histogram!("serve.latency.cpu");
    let _ = omega_obs::histogram!("serve.latency.gpu");
    let _ = omega_obs::histogram!("serve.latency.fpga");
    let _ = omega_obs::histogram!("serve.queue_wait_ns");
    let _ = omega_obs::histogram!("serve.coalesce_ns");
    let _ = omega_obs::histogram!("serve.kernel_ns");
    let _ = omega_obs::histogram!("serve.kernel_ns.cpu");
    let _ = omega_obs::histogram!("serve.kernel_ns.gpu");
    let _ = omega_obs::histogram!("serve.kernel_ns.fpga");
    let _ = omega_obs::histogram!("serve.transfer_ns");
    let _ = omega_obs::histogram!("serve.cache_lookup_ns");
    let _ = omega_obs::histogram!("serve.auto_predict_ns");
    let _ = omega_obs::histogram!("serve.auto_error_pct");
}

/// Renders `/stats`: the full metrics snapshot plus daemon-local
/// occupancy figures and the serve instrument inventory.
fn stats_json(shared: &Shared) -> String {
    let snap = omega_obs::snapshot();
    let mut counters = JsonObject::new();
    for (name, v) in &snap.counters {
        counters = counters.u64(name, *v);
    }
    let mut gauges = JsonObject::new();
    for (name, v) in &snap.gauges {
        gauges = gauges.raw(name, &v.to_string());
    }
    let mut histograms = JsonObject::new();
    for (name, h) in &snap.histograms {
        let entry = JsonObject::new()
            .u64("count", h.count())
            .u64("sum", h.sum)
            .f64("mean", h.mean())
            .u64("p50", h.percentile(50.0))
            .u64("p90", h.percentile(90.0))
            .u64("p95", h.percentile(95.0))
            .u64("p99", h.percentile(99.0))
            .u64_array("buckets", h.counts.iter().copied())
            .finish();
        histograms = histograms.raw(name, &entry);
    }
    let queue = JsonObject::new()
        .u64("depth", shared.lanes.depth() as u64)
        .u64("capacity_per_lane", shared.lanes.capacity() as u64)
        .raw("draining", if shared.lanes.is_draining() { "true" } else { "false" })
        .finish();
    let cache_stats = shared.cache.stats();
    let cache = JsonObject::new()
        .u64("bytes", cache_stats.bytes as u64)
        .u64("capacity_bytes", cache_stats.capacity_bytes as u64)
        .u64("entries", cache_stats.entries as u64)
        .finish();
    let mut instruments = String::from("[");
    for (i, name) in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")).enumerate() {
        if i > 0 {
            instruments.push(',');
        }
        instruments.push('"');
        instruments.push_str(name);
        instruments.push('"');
    }
    instruments.push(']');
    JsonObject::new()
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &histograms.finish())
        .raw("queue", &queue)
        .raw("cache", &cache)
        .raw("instruments", &instruments)
        .finish()
}

fn error_body(message: &str) -> String {
    JsonObject::new().string("error", message).finish()
}

/// One routed response, ready to serialise.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, body: String) -> Response {
        Response { status, reason, content_type: "application/json", headers: Vec::new(), body }
    }

    fn not_found(message: &str) -> Response {
        Response::json(404, "Not Found", error_body(message))
    }
}

/// Renders `/healthz`: liveness plus uptime, build identity, and the
/// current per-lane queue depths.
fn healthz_json(shared: &Shared) -> String {
    let mut queues = JsonObject::new();
    for kind in BackendKind::ALL {
        queues = queues.u64(kind.as_str(), shared.lanes.depth_of(kind) as u64);
    }
    let build = JsonObject::new()
        .string("name", env!("CARGO_PKG_NAME"))
        .string("version", env!("CARGO_PKG_VERSION"))
        .finish();
    JsonObject::new()
        .string("status", "ok")
        .u64("uptime_secs", shared.started.elapsed().as_secs())
        .raw("build", &build)
        .raw("queue_depths", &queues.finish())
        .raw("draining", if shared.lanes.is_draining() { "true" } else { "false" })
        .finish()
}

/// Renders the `/traces` flight-recorder index, most recent last.
fn traces_index_json() -> String {
    let recorder = omega_obs::recorder();
    let traces = recorder.recent(usize::MAX);
    let mut list = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            list.push(',');
        }
        list.push_str(&t.summary_json());
    }
    list.push(']');
    JsonObject::new()
        .u64("count", traces.len() as u64)
        .u64("capacity", recorder.capacity() as u64)
        .raw("traces", &list)
        .finish()
}

/// Routes one parsed request.
fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "OK", healthz_json(shared)),
        ("GET", "/stats") => Response::json(200, "OK", stats_json(shared)),
        ("GET", "/metrics") => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: omega_obs::render_prometheus(&omega_obs::snapshot()),
        },
        ("GET", "/traces") => Response::json(200, "OK", traces_index_json()),
        ("POST", "/scan") => handle_scan(shared, request),
        ("GET", path) if path.starts_with("/traces/") => {
            let id_text = &path["/traces/".len()..];
            match u64::from_str_radix(id_text, 16).ok().and_then(|id| omega_obs::recorder().get(id))
            {
                Some(trace) => Response::json(200, "OK", trace.json()),
                None => Response::not_found(&format!("no trace {id_text:?}")),
            }
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let id_text = &path["/jobs/".len()..];
            match JobId::parse(id_text).and_then(|id| shared.table.get(id).map(|r| (id, r))) {
                Some((id, record)) => Response::json(200, "OK", job_json(id, &record)),
                None => Response::not_found(&format!("no job {id_text:?}")),
            }
        }
        ("POST" | "GET", _) => Response::not_found("unknown path"),
        _ => {
            Response::json(405, "Method Not Allowed", error_body("only GET and POST are supported"))
        }
    }
}

fn handle_scan(shared: &Shared, http_request: &Request) -> Response {
    let text = match std::str::from_utf8(&http_request.body) {
        Ok(t) => t,
        Err(_) => return Response::json(400, "Bad Request", error_body("body is not UTF-8")),
    };
    let request = match parse_scan_request(text) {
        Ok(r) => r,
        Err(e) => return Response::json(400, "Bad Request", error_body(&e.to_string())),
    };

    // Tracing is opt-in: any X-Omega-Trace header (or trace_all) starts
    // a request trace; a well-formed header additionally joins the
    // caller's trace id and parent span.
    let inbound = http_request.trace_header.as_deref().and_then(TraceContext::parse);
    let trace = (http_request.trace_header.is_some() || shared.config.trace_all)
        .then(|| RequestTrace::begin("serve.request", inbound));
    let trace_headers = |t: &Option<Arc<RequestTrace>>| -> Vec<(&'static str, String)> {
        t.iter().map(|t| ("X-Omega-Trace", t.context().header_value())).collect()
    };

    let key = CacheKey::new(
        request.payload_digest,
        request.params,
        request.backend_label.clone(),
        request.overlap,
    );
    let lookup_started = Instant::now();
    let cached = shared.cache.get(&key);
    let lookup_ns = lookup_started.elapsed().as_nanos() as u64;
    omega_obs::histogram!("serve.cache_lookup_ns").record(lookup_ns);
    if let Some(t) = &trace {
        t.record_wall("serve.cache_lookup", t.root_span(), t.offset_of(lookup_started), lookup_ns);
        t.annotate("cache", if cached.is_some() { "hit" } else { "miss" });
        t.annotate("backend", request.kind.as_str());
    }

    if let Some(result) = cached {
        let id = shared.table.create_cached(request.kind, result);
        if let Some(t) = &trace {
            shared.table.update(id, |r| r.trace_id = Some(t.trace_id()));
            t.annotate("job", &id.to_string());
            t.annotate("state", "done");
            t.finish();
        }
        let body = match shared.table.get(id) {
            Some(r) => job_json(id, &r),
            None => error_body("job record vanished"),
        };
        return Response { headers: trace_headers(&trace), ..Response::json(200, "OK", body) };
    }

    let id = shared.table.create(request.kind);
    if let Some(t) = &trace {
        shared.table.update(id, |r| r.trace_id = Some(t.trace_id()));
    }
    match shared.lanes.submit(Submission { id, request, trace: trace.clone() }) {
        Ok(()) => {
            let body = match shared.table.get(id) {
                Some(r) => job_json(id, &r),
                None => error_body("job record vanished"),
            };
            Response { headers: trace_headers(&trace), ..Response::json(202, "Accepted", body) }
        }
        Err(SubmitError::QueueFull { queued, capacity }) => {
            shared.table.remove(id);
            if let Some(t) = &trace {
                t.annotate("state", "rejected");
                t.finish();
            }
            let retry = shared.config.retry_after_secs.max(1);
            let body = JsonObject::new()
                .string("error", "queue full")
                .u64("queued", queued as u64)
                .u64("capacity", capacity as u64)
                .u64("retry_after_secs", retry)
                .finish();
            let mut headers = trace_headers(&trace);
            headers.push(("Retry-After", retry.to_string()));
            Response { headers, ..Response::json(429, "Too Many Requests", body) }
        }
        Err(SubmitError::Draining) => {
            shared.table.remove(id);
            if let Some(t) = &trace {
                t.annotate("state", "rejected");
                t.finish();
            }
            Response {
                headers: trace_headers(&trace),
                ..Response::json(503, "Service Unavailable", error_body("daemon is draining"))
            }
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _span = omega_obs::span!("serve.request");
    // A stalled peer must not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(Some(request)) => {
            let response = route(shared, &request);
            let _ = write_response(
                &mut stream,
                response.status,
                response.reason,
                response.content_type,
                &response.headers,
                &response.body,
            );
        }
        Ok(None) => {}
        Err(e @ HttpError::Io(_)) => {
            // Socket already broken; nothing useful to write.
            let _ = e;
        }
        Err(e) => {
            let (status, reason) = e.status();
            let _ = write_response(
                &mut stream,
                status,
                reason,
                "application/json",
                &[],
                &error_body(&e.detail()),
            );
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the daemon;
/// call [`ServeHandle::shutdown`] (or let the process exit).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Holds queued work (admission continues). See [`Lanes::pause`].
    pub fn pause(&self) {
        self.shared.lanes.pause();
    }

    /// Releases held work.
    pub fn resume(&self) {
        self.shared.lanes.resume();
    }

    /// Total queued jobs across lanes.
    pub fn queue_depth(&self) -> usize {
        self.shared.lanes.depth()
    }

    /// Graceful shutdown: reject new work, finish every admitted job,
    /// then stop accepting. Returns the drain report — every job's
    /// final state — once all threads have exited.
    pub fn shutdown(mut self) -> Vec<(crate::job::JobId, crate::job::JobState)> {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.lanes.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection, then reap it.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.table.states()
    }

    /// Blocks on the accept loop (daemon mode: runs until the process
    /// is killed).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Boots the daemon: binds, spawns the three lane workers and the
/// acceptor, and returns a handle.
pub fn start(config: ServeConfig) -> io::Result<ServeHandle> {
    register_instruments();
    omega_obs::recorder().set_capacity(config.trace_capacity);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        lanes: Lanes::with_capacity(config.queue_capacity),
        table: JobTable::default(),
        cache: ResultCache::with_capacity(config.cache_capacity_bytes),
        config: config.clone(),
        shutting_down: AtomicBool::new(false),
        started: Instant::now(),
    });
    if config.start_paused {
        shared.lanes.pause();
    }

    let mut workers = Vec::new();
    for kind in BackendKind::ALL {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-lane-{}", kind.as_str()))
                .spawn(move || run_lane(kind, &shared.lanes, &shared.table, &shared.cache))?,
        );
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor =
        std::thread::Builder::new().name("serve-accept".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let shared = Arc::clone(&acceptor_shared);
                        let spawned = std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(&shared, stream));
                        if spawned.is_err() {
                            // Thread exhaustion: shed load rather than die.
                            continue;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })?;

    Ok(ServeHandle { addr, shared, acceptor: Some(acceptor), workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_capacity > 0);
        assert!(c.cache_capacity_bytes > 0);
        assert!(c.max_body_bytes > 0);
    }

    #[test]
    fn stats_json_is_valid_and_lists_serve_instruments() {
        register_instruments();
        let shared = Shared {
            lanes: Lanes::with_capacity(4),
            table: JobTable::default(),
            cache: ResultCache::with_capacity(1024),
            config: ServeConfig::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
        };
        let json = stats_json(&shared);
        let v = omega_obs::parse_json(&json).unwrap();
        let instruments = v.get("instruments").unwrap().as_array().unwrap();
        let listed: Vec<&str> = instruments.iter().filter_map(|x| x.as_str()).collect();
        for name in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")) {
            assert!(listed.contains(name), "{name} missing from /stats instruments");
        }
        assert!(v.get("counters").unwrap().get("serve.jobs").is_some());
        assert!(v.get("queue").unwrap().get("capacity_per_lane").is_some());
        assert!(v.get("cache").unwrap().get("capacity_bytes").is_some());
        let batch = v.get("histograms").unwrap().get("serve.batch_size").unwrap();
        for pct in ["p50", "p90", "p95", "p99"] {
            assert!(batch.get(pct).is_some(), "{pct} missing from histogram entry");
        }
    }

    #[test]
    fn healthz_reports_uptime_build_and_depths() {
        register_instruments();
        let shared = Shared {
            lanes: Lanes::with_capacity(4),
            table: JobTable::default(),
            cache: ResultCache::with_capacity(1024),
            config: ServeConfig::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
        };
        let v = omega_obs::parse_json(&healthz_json(&shared)).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert!(v.get("uptime_secs").unwrap().as_u64().is_some());
        assert!(v.get("build").unwrap().get("version").unwrap().as_str().is_some());
        let depths = v.get("queue_depths").unwrap();
        for lane in ["cpu", "gpu", "fpga"] {
            assert_eq!(depths.get(lane).unwrap().as_u64(), Some(0));
        }
    }
}
