//! On-disk content-addressed result store.
//!
//! The in-memory [`crate::cache::ResultCache`] is an LRU over a byte
//! budget: eviction and restarts both discard results that cost real
//! detector time. The store fixes both: every cached result is also
//! written through to disk, keyed by a digest of the full cache key
//! (payload digest, exact scan parameters, backend label, overlap
//! mode), so an evicted or post-restart lookup falls through to disk
//! and rehydrates the memory cache instead of re-running the scan.
//!
//! ## Layout
//!
//! One file per result under `<data-dir>/store/<16-hex-digest>.res`:
//!
//! ```text
//! <header JSON line>\n<result JSON bytes>
//! ```
//!
//! The header repeats every cache-key facet plus the body length and
//! its FNV-1a checksum. Reads verify all of it: a digest collision
//! (header key mismatch) or torn write (length/checksum mismatch) is a
//! counted miss, never a wrong result — the contract is the same as the
//! memory cache's: bytes out are exactly the bytes a fresh run would
//! produce, or nothing.
//!
//! Writes go to a `.tmp` sibling, fsync, then rename, so a crash leaves
//! either the old file, the new file, or a dangling `.tmp` the next
//! boot ignores — never a half-written `.res`.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use omega_obs::{JsonObject, JsonValue};

use crate::cache::CacheKey;
use crate::digest::{fnv64, Fnv64};

/// Stable 64-bit digest of a full cache key: the store filename and the
/// WAL's `done` record key. Field order is fixed; changing it is a
/// store-format break.
pub fn key_digest(key: &CacheKey) -> u64 {
    let mut h = Fnv64::new();
    h.update(&key.payload_digest.to_le_bytes());
    h.update(&(key.params.grid as u64).to_le_bytes());
    h.update(&key.params.min_win.to_le_bytes());
    h.update(&key.params.max_win.to_le_bytes());
    h.update(&(key.params.min_snps_per_side as u64).to_le_bytes());
    h.update(&(key.params.threads as u64).to_le_bytes());
    h.update(key.backend.as_bytes());
    h.update(&[u8::from(key.overlapped)]);
    // Shard geometry appends only when present, so every pre-cluster
    // key digests to exactly what it always did (no store-format break
    // for whole-scan entries). The header key-equality check on read
    // guards the (astronomically unlikely) extension collision.
    if let Some(s) = &key.shard {
        h.update(&s.first_bp.to_le_bytes());
        h.update(&s.last_bp.to_le_bytes());
        h.update(&(s.grid as u64).to_le_bytes());
        h.update(&(s.lo as u64).to_le_bytes());
        h.update(&(s.hi as u64).to_le_bytes());
    }
    h.finish()
}

// 64-bit digests/checksums are hex *strings* in the header: the JSON
// layer parses numbers as f64, which silently rounds above 2^53.
fn header_json(key: &CacheKey, body: &str) -> String {
    let mut obj = JsonObject::new()
        .string("digest", &format!("{:016x}", key.payload_digest))
        .u64("grid", key.params.grid as u64)
        .u64("min_win", key.params.min_win)
        .u64("max_win", key.params.max_win)
        .u64("min_snps", key.params.min_snps_per_side as u64)
        .u64("threads", key.params.threads as u64)
        .string("backend", &key.backend)
        .raw("overlapped", if key.overlapped { "true" } else { "false" });
    if let Some(s) = &key.shard {
        let shard = JsonObject::new()
            .u64("first_bp", s.first_bp)
            .u64("last_bp", s.last_bp)
            .u64("grid", s.grid as u64)
            .u64("lo", s.lo as u64)
            .u64("hi", s.hi as u64)
            .finish();
        obj = obj.raw("shard", &shard);
    }
    obj.u64("len", body.len() as u64)
        .string("sum", &format!("{:016x}", fnv64(body.as_bytes())))
        .finish()
}

fn hex_u64(v: &JsonValue, field: &str) -> Option<u64> {
    u64::from_str_radix(v.get(field)?.as_str()?, 16).ok()
}

fn key_from_header(v: &JsonValue) -> Option<CacheKey> {
    let shard = match v.get("shard") {
        None | Some(JsonValue::Null) => None,
        Some(s) => Some(omega_accel::ShardSpec {
            first_bp: s.get("first_bp")?.as_u64()?,
            last_bp: s.get("last_bp")?.as_u64()?,
            grid: s.get("grid")?.as_u64()? as usize,
            lo: s.get("lo")?.as_u64()? as usize,
            hi: s.get("hi")?.as_u64()? as usize,
        }),
    };
    Some(CacheKey {
        payload_digest: hex_u64(v, "digest")?,
        params: omega_core::ScanParams {
            grid: v.get("grid")?.as_u64()? as usize,
            min_win: v.get("min_win")?.as_u64()?,
            max_win: v.get("max_win")?.as_u64()?,
            min_snps_per_side: v.get("min_snps")?.as_u64()? as usize,
            threads: v.get("threads")?.as_u64()? as usize,
        },
        backend: v.get("backend")?.as_str()?.to_string(),
        overlapped: *v.get("overlapped")? == JsonValue::Bool(true),
        shard,
    })
}

/// One rehydratable entry found by a boot-time scan.
#[derive(Debug)]
pub struct StoredEntry {
    /// The reconstructed cache key.
    pub key: CacheKey,
    /// The verified result bytes.
    pub value: Arc<String>,
    /// File modification time, for newest-first rehydration.
    pub modified: std::time::SystemTime,
}

/// The disk store. All operations are infallible at the call site:
/// errors degrade to counted misses (reads) or a counted write error
/// that flips the store into a read-only degraded mode.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Resident bytes across all `.res` files (approximate; maintained
    /// from the boot scan plus writes).
    bytes: AtomicU64,
    degraded: AtomicBool,
}

impl ResultStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let mut bytes = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "res") {
                bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                // A crash mid-write left this; the rename never happened.
                let _ = std::fs::remove_file(&path);
            }
        }
        omega_obs::gauge!("serve.store_bytes").set(bytes as i64);
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            bytes: AtomicU64::new(bytes),
            degraded: AtomicBool::new(false),
        })
    }

    fn path_of(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.res"))
    }

    /// Writes `value` under `key` (tmp + fsync + rename). Idempotent:
    /// rewriting an existing key is a no-op cost-wise beyond the write.
    pub fn write(&self, key: &CacheKey, value: &str) {
        // Acquire pairs with the Release below: a writer that sees the
        // degraded flag also sees the failure that raised it.
        if self.degraded.load(Ordering::Acquire) {
            return;
        }
        let digest = key_digest(key);
        let path = self.path_of(digest);
        let existed = path.exists();
        let tmp = self.dir.join(format!("{digest:016x}.tmp"));
        let header = header_json(key, value);
        let total = header.len() + 1 + value.len();
        let result = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(value.as_bytes())?;
            f.sync_data()?;
            drop(f);
            std::fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                if !existed {
                    self.bytes.fetch_add(total as u64, Ordering::Relaxed);
                }
                omega_obs::counter!("serve.store_writes").inc();
                omega_obs::gauge!("serve.store_bytes")
                    .set(self.bytes.load(Ordering::Relaxed) as i64);
            }
            Err(e) => {
                omega_obs::counter!("serve.store_errors").inc();
                eprintln!("omega-serve: result store degraded (write failed: {e})");
                self.degraded.store(true, Ordering::Release);
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn read_verified(&self, path: &Path) -> Option<(CacheKey, String)> {
        let mut raw = Vec::new();
        File::open(path).ok()?.read_to_end(&mut raw).ok()?;
        let nl = raw.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&raw[..nl]).ok()?;
        let v = omega_obs::parse_json(header).ok()?;
        let key = key_from_header(&v)?;
        let body = &raw[nl + 1..];
        let len = v.get("len")?.as_u64()?;
        let sum = hex_u64(&v, "sum")?;
        if body.len() as u64 != len || fnv64(body) != sum {
            return None;
        }
        let body = String::from_utf8(body.to_vec()).ok()?;
        Some((key, body))
    }

    /// Looks up `key`, verifying the header matches (collision guard)
    /// and the body checksums. Counted as a store hit or miss.
    pub fn read(&self, key: &CacheKey) -> Option<Arc<String>> {
        let path = self.path_of(key_digest(key));
        if !path.exists() {
            omega_obs::counter!("serve.store_misses").inc();
            return None;
        }
        match self.read_verified(&path) {
            Some((stored_key, body)) if stored_key == *key => {
                omega_obs::counter!("serve.store_hits").inc();
                Some(Arc::new(body))
            }
            Some(_) => {
                // 64-bit digest collision: distinct key owns the slot.
                omega_obs::counter!("serve.store_misses").inc();
                None
            }
            None => {
                omega_obs::counter!("serve.store_errors").inc();
                omega_obs::counter!("serve.store_misses").inc();
                None
            }
        }
    }

    /// Looks up a result by its key digest alone (WAL `done` records
    /// carry only the digest). The header and checksum still verify.
    pub fn read_by_digest(&self, digest: u64) -> Option<(CacheKey, Arc<String>)> {
        let path = self.path_of(digest);
        if !path.exists() {
            return None;
        }
        self.read_verified(&path).map(|(key, body)| (key, Arc::new(body)))
    }

    /// Scans the store for rehydration, newest first. Corrupt files are
    /// skipped (counted), not fatal.
    pub fn entries(&self) -> Vec<StoredEntry> {
        let mut out = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.dir) else { return out };
        for entry in dir {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "res") {
                continue;
            }
            match self.read_verified(&path) {
                Some((key, body)) => out.push(StoredEntry {
                    key,
                    value: Arc::new(body),
                    modified: entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(std::time::SystemTime::UNIX_EPOCH),
                }),
                None => {
                    omega_obs::counter!("serve.store_errors").inc();
                }
            }
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.modified));
        out
    }

    /// Resident bytes (approximate).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::ScanParams;

    fn tmp_store(name: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("omega-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(&dir).expect("open store")
    }

    fn key(digest: u64) -> CacheKey {
        CacheKey {
            payload_digest: digest,
            params: ScanParams { threads: 1, ..ScanParams::default() },
            backend: "CPU".to_string(),
            overlapped: false,
            shard: None,
        }
    }

    #[test]
    fn write_read_roundtrip_preserves_bytes() {
        let store = tmp_store("roundtrip");
        let body = "{\"backend\":\"CPU\",\"n_replicates\":1}";
        store.write(&key(42), body);
        let got = store.read(&key(42)).expect("hit");
        assert_eq!(got.as_str(), body);
        assert!(store.read(&key(43)).is_none());
    }

    #[test]
    fn key_digest_separates_every_facet() {
        let base = key(1);
        let mut facets = Vec::new();
        facets.push(key(2));
        let mut k = key(1);
        k.params.grid += 1;
        facets.push(k);
        let mut k = key(1);
        k.backend = "GPU (Tesla K80)".to_string();
        facets.push(k);
        let mut k = key(1);
        k.overlapped = true;
        facets.push(k);
        let mut k = key(1);
        k.shard =
            Some(omega_accel::ShardSpec { first_bp: 1, last_bp: 999, grid: 16, lo: 0, hi: 8 });
        facets.push(k.clone());
        let mut k2 = k.clone();
        if let Some(s) = &mut k2.shard {
            s.hi = 16;
        }
        facets.push(k2);
        for other in facets {
            assert_ne!(key_digest(&base), key_digest(&other), "{other:?}");
        }
    }

    #[test]
    fn sharded_key_roundtrips_through_store() {
        let store = tmp_store("shard");
        let mut k = key(11);
        k.shard =
            Some(omega_accel::ShardSpec { first_bp: 40, last_bp: 2000, grid: 32, lo: 8, hi: 20 });
        store.write(&k, "shard-result");
        let got = store.read(&k).expect("hit");
        assert_eq!(got.as_str(), "shard-result");
        // The unsharded twin misses.
        assert!(store.read(&key(11)).is_none());
        let (back, _) = store.read_by_digest(key_digest(&k)).expect("by digest");
        assert_eq!(back, k);
    }

    #[test]
    fn corrupt_body_is_a_miss_not_garbage() {
        let store = tmp_store("corrupt");
        store.write(&key(7), "result-bytes-here");
        let path = store.path_of(key_digest(&key(7)));
        let mut raw = std::fs::read(&path).expect("read");
        let at = raw.len() - 3;
        raw[at] ^= 0x55;
        std::fs::write(&path, &raw).expect("corrupt");
        assert!(store.read(&key(7)).is_none());
    }

    #[test]
    fn rehydration_scan_returns_verified_entries() {
        let store = tmp_store("entries");
        store.write(&key(1), "one");
        store.write(&key(2), "two");
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        for e in &entries {
            let expect = if e.key.payload_digest == 1 { "one" } else { "two" };
            assert_eq!(e.value.as_str(), expect);
        }
    }

    #[test]
    fn read_by_digest_recovers_key_and_value() {
        let store = tmp_store("bydigest");
        store.write(&key(9), "nine");
        let (k, v) = store.read_by_digest(key_digest(&key(9))).expect("hit");
        assert_eq!(k, key(9));
        assert_eq!(v.as_str(), "nine");
        assert!(store.read_by_digest(0xdead_beef).is_none());
    }
}
