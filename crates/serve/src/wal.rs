//! Write-ahead job log: crash durability for admitted work.
//!
//! Every job admitted to a lane is appended to an on-disk log *before*
//! the client sees its `202 Accepted`, and every terminal transition
//! (done / failed / expired) is appended when the lane worker publishes
//! it. Both appends are fsync'd, so after a crash the log contains the
//! exact set of jobs the daemon owed work to: an admit record with no
//! matching terminal record is a job that must be re-enqueued on
//! restart. Completed jobs keep only their result-store key in the log —
//! the bytes themselves live in [`crate::store`].
//!
//! ## Record format
//!
//! Records are length-prefixed and checksummed:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload bytes]
//! ```
//!
//! The payload is a one-line JSON object:
//!
//! * `{"t":"admit","id":N,"body":"<original /scan body>"}`
//! * `{"t":"end","id":N,"state":"done","key":"<16-hex store key>"}`
//!   (`key` present only for `done`)
//! * `{"t":"seq","next":N}` — job-id high-water reservation, so a
//!   restarted daemon never re-issues an id a pre-crash client may
//!   still poll (cache-hit jobs complete inline and are not logged
//!   individually; the reservation covers them in blocks).
//!
//! ## Recovery contract
//!
//! [`Wal::open_and_replay`] reads the log sequentially and **stops at
//! the first record that fails its length or checksum check**, then
//! truncates the file back to the last good byte — a torn tail from a
//! mid-write crash is detected and discarded, never replayed as
//! garbage and never a panic. Replay is pure bookkeeping; re-running
//! the recovered jobs through the normal scheduler path is what makes
//! recovery bit-identical to an uninterrupted run (the detector is
//! deterministic for identical inputs).
//!
//! ## Compaction
//!
//! Terminal records make most of the log dead weight. When the file
//! grows past a threshold and the live set is a small fraction of it,
//! the log is rewritten in place (tmp + rename) with one `seq` record
//! and the live admits only. The in-memory `live` map is bounded by
//! queue capacity — a job's body is dropped from it the moment the job
//! reaches a terminal state.
//!
//! A write error (disk full, permission flip) degrades the log to
//! non-persistent instead of failing requests: the error is counted in
//! `serve.wal_errors` and all later appends become no-ops. Serving
//! traffic beats preserving the log.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use omega_obs::{JsonObject, JsonValue};

use crate::digest::fnv64;
use crate::job::JobState;

/// Sanity cap on a declared record length: anything larger is treated
/// as corruption (the daemon itself never writes records this big —
/// bodies are bounded by `max_body_bytes` plus framing).
const MAX_RECORD_BYTES: usize = 64 << 20;

/// Job-id reservation block size: one fsync'd `seq` record covers this
/// many inline (cache-hit) job ids.
pub const ID_RESERVE_BLOCK: u64 = 65_536;

/// Compaction triggers when the log exceeds this many bytes *and* the
/// live records are under half of it.
const COMPACT_THRESHOLD_BYTES: u64 = 1 << 20;

/// Fixed framing overhead per record (length prefix + checksum).
const FRAME_BYTES: u64 = 12;

/// Final state of a job found in the log during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredState {
    /// Admitted, never finished: must be re-enqueued.
    Queued,
    /// Finished; result bytes live in the store under this key digest.
    Done {
        /// The result-store key digest (see [`crate::store::key_digest`]).
        key: u64,
    },
    /// Finished without a result.
    Failed,
    /// Expired before a lane picked it up.
    Expired,
}

/// One job reconstructed from the log.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job's pre-crash id (preserved so client polls keep working).
    pub id: u64,
    /// The original `/scan` request body (admit record payload).
    pub body: String,
    /// Where the job got to before the crash.
    pub state: RecoveredState,
}

/// Everything replay learned from the log.
#[derive(Debug, Default)]
pub struct Replay {
    /// Recovered jobs, in admit order.
    pub jobs: Vec<RecoveredJob>,
    /// First job id that is provably fresh (no pre-crash client can
    /// hold it): max of the `seq` reservations and every logged id + 1.
    pub next_id: u64,
    /// Whether a torn/corrupt tail was detected (and truncated).
    pub corrupt_tail: bool,
    /// Records successfully replayed.
    pub records: u64,
}

#[derive(Debug)]
struct WalInner {
    /// `None` once the log has degraded after a write error.
    file: Option<File>,
    /// Current log length in bytes.
    bytes: u64,
    /// Bytes of live (admitted, non-terminal) records.
    live_bytes: u64,
    /// Live jobs: admitted, not yet terminal. Bounded by queue capacity.
    live: HashMap<u64, String>,
    /// Durable job-id reservation high-water mark.
    id_ceiling: u64,
}

/// The write-ahead log. One per `-data-dir`; all appends serialise on
/// one mutex (the fsync dominates, not the lock).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
}

fn encode_record(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_BYTES as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload.as_bytes()).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

fn admit_payload(id: u64, body: &str) -> String {
    JsonObject::new().string("t", "admit").u64("id", id).string("body", body).finish()
}

fn end_payload(id: u64, state: JobState, key: Option<u64>) -> String {
    let mut obj = JsonObject::new().string("t", "end").u64("id", id).string(
        "state",
        match state {
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Expired => "expired",
            // Non-terminal states are never logged as `end`; map them
            // to `failed` defensively rather than extending the format.
            JobState::Queued | JobState::Running => "failed",
        },
    );
    if let Some(key) = key {
        obj = obj.string("key", &format!("{key:016x}"));
    }
    obj.finish()
}

fn seq_payload(next: u64) -> String {
    JsonObject::new().string("t", "seq").u64("next", next).finish()
}

/// Splits the raw log into checksum-valid payloads, returning the
/// payloads, the byte offset of the first invalid record (== `raw.len()`
/// when the whole log is sound), and whether a corrupt tail was found.
fn scan_records(raw: &[u8]) -> (Vec<String>, usize, bool) {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    while at < raw.len() {
        let Some(head) = raw.get(at..at + FRAME_BYTES as usize) else {
            return (payloads, at, true);
        };
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        let sum = u64::from_le_bytes([
            head[4], head[5], head[6], head[7], head[8], head[9], head[10], head[11],
        ]);
        if len > MAX_RECORD_BYTES {
            return (payloads, at, true);
        }
        let start = at + FRAME_BYTES as usize;
        let Some(body) = raw.get(start..start + len) else {
            return (payloads, at, true);
        };
        if fnv64(body) != sum {
            return (payloads, at, true);
        }
        let Ok(text) = std::str::from_utf8(body) else {
            return (payloads, at, true);
        };
        payloads.push(text.to_string());
        at = start + len;
    }
    (payloads, at, false)
}

impl Wal {
    /// Opens (or creates) the log at `path`, replays it, truncates any
    /// corrupt tail, and returns the log ready for appending plus what
    /// was recovered.
    pub fn open_and_replay(path: &Path) -> std::io::Result<(Wal, Replay)> {
        let mut raw = Vec::new();
        if path.exists() {
            File::open(path)?.read_to_end(&mut raw)?;
        }
        let (payloads, good_len, corrupt_tail) = scan_records(&raw);
        if corrupt_tail {
            omega_obs::counter!("serve.wal_corrupt_skipped").inc();
        }

        // Join admits with their terminal records; replay is pure
        // bookkeeping, so out-of-order pairs (possible across lane
        // threads) resolve the same regardless of log order.
        let mut admit_order: Vec<u64> = Vec::new();
        let mut admits: HashMap<u64, String> = HashMap::new();
        let mut ends: HashMap<u64, RecoveredState> = HashMap::new();
        let mut max_id = 0u64;
        let mut ceiling = 0u64;
        let mut records = 0u64;
        for payload in &payloads {
            let Ok(v) = omega_obs::parse_json(payload) else {
                // Checksum-valid but unparseable: written by a future
                // or past version; skip the record, not the log.
                omega_obs::counter!("serve.wal_corrupt_skipped").inc();
                continue;
            };
            records += 1;
            match v.get("t").and_then(JsonValue::as_str) {
                Some("admit") => {
                    let (Some(id), Some(body)) = (
                        v.get("id").and_then(JsonValue::as_u64),
                        v.get("body").and_then(JsonValue::as_str),
                    ) else {
                        continue;
                    };
                    max_id = max_id.max(id);
                    if !admits.contains_key(&id) {
                        admit_order.push(id);
                    }
                    admits.insert(id, body.to_string());
                }
                Some("end") => {
                    let Some(id) = v.get("id").and_then(JsonValue::as_u64) else { continue };
                    max_id = max_id.max(id);
                    let state = match v.get("state").and_then(JsonValue::as_str) {
                        Some("done") => {
                            let key = v
                                .get("key")
                                .and_then(JsonValue::as_str)
                                .and_then(|h| u64::from_str_radix(h, 16).ok());
                            match key {
                                Some(key) => RecoveredState::Done { key },
                                None => RecoveredState::Failed,
                            }
                        }
                        Some("expired") => RecoveredState::Expired,
                        _ => RecoveredState::Failed,
                    };
                    ends.insert(id, state);
                }
                Some("seq") => {
                    if let Some(next) = v.get("next").and_then(JsonValue::as_u64) {
                        ceiling = ceiling.max(next);
                    }
                }
                _ => {}
            }
        }

        let mut jobs = Vec::with_capacity(admit_order.len());
        let mut live = HashMap::new();
        let mut live_bytes = 0u64;
        for id in admit_order {
            let Some(body) = admits.remove(&id) else { continue };
            let state = ends.remove(&id).unwrap_or(RecoveredState::Queued);
            if state == RecoveredState::Queued {
                live_bytes += admit_payload(id, &body).len() as u64 + FRAME_BYTES;
                live.insert(id, body.clone());
            }
            jobs.push(RecoveredJob { id, body, state });
        }
        omega_obs::counter!("serve.wal_replayed").add(records);

        // Truncate the torn tail so future appends start clean.
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if good_len < raw.len() {
            file.set_len(good_len as u64)?;
        }
        let replay =
            Replay { jobs, next_id: (max_id + 1).max(ceiling).max(1), corrupt_tail, records };
        let wal = Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file: Some(file),
                bytes: good_len as u64,
                live_bytes,
                live,
                id_ceiling: replay.next_id,
            }),
        };
        omega_obs::gauge!("serve.wal_bytes").set(good_len as i64);
        Ok((wal, replay))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Appends one record and fsyncs. On failure the log degrades to
    /// non-persistent (counted, never fatal).
    fn append_locked(inner: &mut WalInner, payload: &str) {
        let Some(file) = inner.file.as_mut() else { return };
        let record = encode_record(payload);
        let t0 = std::time::Instant::now();
        let wrote = file.write_all(&record).and_then(|()| file.sync_data());
        omega_obs::histogram!("serve.wal_fsync_ns").record(t0.elapsed().as_nanos() as u64);
        match wrote {
            Ok(()) => {
                inner.bytes += record.len() as u64;
                omega_obs::counter!("serve.wal_appends").inc();
                omega_obs::gauge!("serve.wal_bytes").set(inner.bytes as i64);
            }
            Err(e) => {
                omega_obs::counter!("serve.wal_errors").inc();
                eprintln!("omega-serve: wal degraded (append failed: {e}); persistence is off");
                inner.file = None;
            }
        }
    }

    /// Logs an admitted job (fsync'd before the caller acknowledges it).
    pub fn append_admit(&self, id: u64, body: &str) {
        let mut inner = self.lock();
        let payload = admit_payload(id, body);
        inner.live_bytes += payload.len() as u64 + FRAME_BYTES;
        inner.live.insert(id, body.to_string());
        Self::append_locked(&mut inner, &payload);
    }

    /// Logs a terminal transition (fsync'd), then compacts if the log
    /// has grown mostly dead.
    pub fn append_terminal(&self, id: u64, state: JobState, key: Option<u64>) {
        let mut inner = self.lock();
        if let Some(body) = inner.live.remove(&id) {
            inner.live_bytes = inner
                .live_bytes
                .saturating_sub(admit_payload(id, &body).len() as u64 + FRAME_BYTES);
        }
        Self::append_locked(&mut inner, &end_payload(id, state, key));
        if inner.bytes > COMPACT_THRESHOLD_BYTES && inner.live_bytes * 2 < inner.bytes {
            Self::compact_locked(&self.path, &mut inner);
        }
    }

    /// Ensures `id` is covered by a durable reservation, so a restarted
    /// daemon never re-issues it. Amortised: one fsync per
    /// [`ID_RESERVE_BLOCK`] ids.
    pub fn reserve_id(&self, id: u64) {
        let mut inner = self.lock();
        if id < inner.id_ceiling {
            return;
        }
        let next = id + ID_RESERVE_BLOCK;
        inner.id_ceiling = next;
        Self::append_locked(&mut inner, &seq_payload(next));
    }

    /// Rewrites the log to one `seq` record plus the live admits
    /// (tmp + rename, fsync'd). Public so recovery and tests can force
    /// a compaction deterministically.
    pub fn compact(&self) {
        let mut inner = self.lock();
        Self::compact_locked(&self.path, &mut inner);
    }

    fn compact_locked(path: &Path, inner: &mut WalInner) {
        if inner.file.is_none() {
            return;
        }
        let tmp = path.with_extension("tmp");
        let mut out = Vec::new();
        out.extend_from_slice(&encode_record(&seq_payload(inner.id_ceiling)));
        let mut ids: Vec<&u64> = inner.live.keys().collect();
        ids.sort();
        for id in ids {
            if let Some(body) = inner.live.get(id) {
                out.extend_from_slice(&encode_record(&admit_payload(*id, body)));
            }
        }
        let rewrite = (|| -> std::io::Result<File> {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_data()?;
            drop(f);
            std::fs::rename(&tmp, path)?;
            OpenOptions::new().append(true).open(path)
        })();
        match rewrite {
            Ok(file) => {
                inner.file = Some(file);
                inner.bytes = out.len() as u64;
                omega_obs::counter!("serve.wal_compactions").inc();
                omega_obs::gauge!("serve.wal_bytes").set(inner.bytes as i64);
            }
            Err(e) => {
                omega_obs::counter!("serve.wal_errors").inc();
                eprintln!("omega-serve: wal degraded (compact failed: {e}); persistence is off");
                inner.file = None;
            }
        }
    }

    /// Current log length in bytes (tests and `/stats`).
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Number of live (admitted, non-terminal) jobs tracked.
    pub fn live_jobs(&self) -> usize {
        self.lock().live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("omega-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("wal.log")
    }

    #[test]
    fn admit_end_roundtrip_and_live_tracking() {
        let path = tmp("roundtrip");
        let (wal, replay) = Wal::open_and_replay(&path).expect("open");
        assert!(replay.jobs.is_empty());
        wal.append_admit(1, "body-one");
        wal.append_admit(2, "body-two");
        wal.append_terminal(1, JobState::Done, Some(0xabcd));
        assert_eq!(wal.live_jobs(), 1);
        drop(wal);

        let (wal2, replay) = Wal::open_and_replay(&path).expect("reopen");
        assert_eq!(replay.jobs.len(), 2);
        assert_eq!(replay.jobs[0].state, RecoveredState::Done { key: 0xabcd });
        assert_eq!(replay.jobs[1].state, RecoveredState::Queued);
        assert_eq!(replay.jobs[1].body, "body-two");
        assert_eq!(replay.next_id, 3);
        assert!(!replay.corrupt_tail);
        assert_eq!(wal2.live_jobs(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let path = tmp("torn");
        let (wal, _) = Wal::open_and_replay(&path).expect("open");
        wal.append_admit(1, "kept");
        wal.append_admit(2, "torn-away");
        drop(wal);
        // Tear the last record mid-payload, as a crash mid-write would.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() - 5]).expect("tear");

        let (wal2, replay) = Wal::open_and_replay(&path).expect("reopen");
        assert!(replay.corrupt_tail);
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].body, "kept");
        // The tail is gone from disk too: a fresh append then replay
        // yields exactly [kept, fresh].
        wal2.append_admit(3, "fresh");
        drop(wal2);
        let (_, replay) = Wal::open_and_replay(&path).expect("rereopen");
        assert_eq!(replay.jobs.len(), 2);
        assert_eq!(replay.jobs[1].body, "fresh");
        assert!(!replay.corrupt_tail);
    }

    #[test]
    fn flipped_byte_stops_replay_at_last_good_record() {
        let path = tmp("flip");
        let (wal, _) = Wal::open_and_replay(&path).expect("open");
        wal.append_admit(1, "first");
        let good_len = wal.bytes();
        wal.append_admit(2, "second");
        drop(wal);
        let mut raw = std::fs::read(&path).expect("read");
        let at = good_len as usize + FRAME_BYTES as usize + 2;
        raw[at] ^= 0xff;
        std::fs::write(&path, &raw).expect("corrupt");

        let (_, replay) = Wal::open_and_replay(&path).expect("reopen");
        assert!(replay.corrupt_tail);
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].body, "first");
    }

    #[test]
    fn compaction_drops_terminal_records_and_keeps_live() {
        let path = tmp("compact");
        let (wal, _) = Wal::open_and_replay(&path).expect("open");
        for id in 1..=20 {
            wal.append_admit(id, &format!("job-{id}"));
        }
        for id in 1..=19 {
            wal.append_terminal(id, JobState::Done, Some(id));
        }
        let before = wal.bytes();
        wal.compact();
        assert!(wal.bytes() < before);
        drop(wal);
        let (_, replay) = Wal::open_and_replay(&path).expect("reopen");
        assert_eq!(replay.jobs.len(), 1, "only the live admit survives compaction");
        assert_eq!(replay.jobs[0].id, 20);
        assert_eq!(replay.jobs[0].state, RecoveredState::Queued);
        // The seq record preserves the id high-water mark.
        assert!(replay.next_id >= 21);
    }

    #[test]
    fn id_reservation_survives_restart() {
        let path = tmp("reserve");
        let (wal, _) = Wal::open_and_replay(&path).expect("open");
        wal.reserve_id(5);
        drop(wal);
        let (_, replay) = Wal::open_and_replay(&path).expect("reopen");
        assert!(replay.next_id >= 5 + ID_RESERVE_BLOCK);
    }

    #[test]
    fn end_before_admit_resolves_terminal() {
        // Lane threads can log a terminal record before the handler's
        // admit lands; replay joins them regardless of order.
        let path = tmp("reorder");
        let mut raw = Vec::new();
        raw.extend_from_slice(&encode_record(&end_payload(7, JobState::Done, Some(9))));
        raw.extend_from_slice(&encode_record(&admit_payload(7, "late-admit")));
        std::fs::write(&path, &raw).expect("write");
        let (_, replay) = Wal::open_and_replay(&path).expect("open");
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].state, RecoveredState::Done { key: 9 });
    }
}
