//! Admission control under deterministic contention. Own file = own
//! process, because the `serve.rejected` assertion reads the
//! process-global metrics registry.

mod common;

use omega_serve::{start, JobState, ServeConfig};

/// With lanes paused and capacity K, K+1 concurrent submissions admit
/// exactly K jobs and reject exactly one with a 429 + `Retry-After`
/// hint; nothing panics, and the admitted jobs all survive to
/// completion on drain.
#[test]
fn full_queue_rejects_exactly_one_submission_with_retry_hint() {
    const CAPACITY: usize = 3;
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: CAPACITY,
        retry_after_secs: 2,
        start_paused: true,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let clients: Vec<_> = (0..CAPACITY as u64 + 1)
        .map(|tag| std::thread::spawn(move || common::post_scan(addr, &common::scan_body(tag, 4))))
        .collect();
    let responses: Vec<(u16, String, String)> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();

    let admitted: Vec<&(u16, String, String)> =
        responses.iter().filter(|(s, _, _)| *s == 202).collect();
    let rejected: Vec<&(u16, String, String)> =
        responses.iter().filter(|(s, _, _)| *s == 429).collect();
    assert_eq!(admitted.len(), CAPACITY, "exactly the capacity is admitted: {responses:?}");
    assert_eq!(rejected.len(), 1, "exactly one submission is rejected: {responses:?}");

    // The rejection carries the retry hint in both header and body.
    let (_, headers, body) = rejected[0];
    assert!(
        headers.lines().any(|l| l.eq_ignore_ascii_case("retry-after: 2")),
        "Retry-After header missing: {headers:?}"
    );
    let parsed = omega_obs::parse_json(body).unwrap();
    assert_eq!(parsed.get("retry_after_secs").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(parsed.get("capacity").and_then(|v| v.as_u64()), Some(CAPACITY as u64));

    // The registry agrees: one rejection, and the rejected job left no
    // orphan record behind (only admitted ids exist).
    let (status, _, stats_body) = common::get(addr, "/stats");
    assert_eq!(status, 200);
    let stats = omega_obs::parse_json(&stats_body).unwrap();
    let rejected_count = stats
        .get("counters")
        .and_then(|c| c.get("serve.rejected"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert_eq!(rejected_count, 1);

    // Drain completes every admitted job.
    let report = handle.shutdown();
    assert_eq!(report.len(), CAPACITY, "only admitted jobs have records: {report:?}");
    assert!(
        report.iter().all(|(_, state)| *state == JobState::Done),
        "drain must finish admitted work: {report:?}"
    );
}
