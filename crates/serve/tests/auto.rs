//! `backend=auto` routing end to end. Lives in its own file (= its own
//! process) because the routing-counter assertions read the
//! process-global metrics registry.

mod common;

use omega_serve::{start, ServeConfig};

fn counter(stats: &omega_obs::JsonValue, name: &str) -> u64 {
    stats.get("counters").and_then(|c| c.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn histogram_count(stats: &omega_obs::JsonValue, name: &str) -> u64 {
    stats
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

fn fetch_stats(addr: std::net::SocketAddr) -> omega_obs::JsonValue {
    let (status, _, body) = common::get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    omega_obs::parse_json(&body).expect("stats body is valid JSON")
}

/// Request body with windows wide enough that the sparse ms payload has
/// scorable positions (so the scan does real LD+ω work and the
/// prediction-error sample is recorded).
fn routed_body(tag: u64, grid: usize, backend: &str) -> String {
    format!(
        "{{\"format\":\"ms\",\"payload\":{:?},\
         \"params\":{{\"grid\":{grid},\"max_win\":100000}},\"backend\":{backend:?}}}",
        common::ms_payload(tag)
    )
}

/// Extracts the raw `"result"` object from a job body, byte for byte,
/// by brace matching (the result JSON contains no brace-bearing
/// strings).
fn raw_result(job_body: &str) -> String {
    let at = job_body.find("\"result\":").expect("result present") + "\"result\":".len();
    let bytes = job_body.as_bytes();
    assert_eq!(bytes[at], b'{');
    let mut depth = 0usize;
    for (i, &b) in bytes[at..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return job_body[at..=at + i].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unterminated result object");
}

/// An auto job routes to a lane, produces bytes identical to an
/// explicitly targeted request for the same payload (computed by an
/// independent server instance, so no cache short-circuit), and the
/// routing decision plus prediction accuracy show up in `/stats`.
#[test]
fn auto_routes_and_matches_explicit_backend() {
    let router =
        start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }).unwrap();
    let (status, _, submitted) = common::post_scan(router.addr(), &routed_body(71, 6, "auto"));
    assert_eq!(status, 202, "{submitted}");
    let job = common::poll_done(router.addr(), &common::job_id(&submitted));
    let v = omega_obs::parse_json(&job).expect("job body parses");
    assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("done"), "{job}");
    let routed = v.get("backend").and_then(|b| b.as_str()).expect("backend present").to_string();
    assert!(
        ["cpu", "gpu", "fpga"].contains(&routed.as_str()),
        "auto resolved to a real lane, got {routed:?}"
    );

    // Independent server (fresh cache): the same payload explicitly
    // targeted at the routed lane must produce byte-identical results.
    let direct =
        start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }).unwrap();
    let (status, _, submitted2) = common::post_scan(direct.addr(), &routed_body(71, 6, &routed));
    assert!(status == 202 || status == 200, "{submitted2}");
    let job2 = common::poll_done(direct.addr(), &common::job_id(&submitted2));
    let result = raw_result(&job);
    assert!(!result.contains("\"omega_evaluations\":0"), "the scan did real ω work: {result}");
    assert_eq!(result, raw_result(&job2), "auto vs explicit result bytes");

    // The registry (process-global, shared by both handles) reports the
    // routing decision and the prediction-vs-actual error sample.
    let stats = fetch_stats(router.addr());
    let total = counter(&stats, "serve.auto_routed");
    assert!(total >= 1, "auto_routed counted");
    let per_lane = counter(&stats, "serve.auto_routed.cpu")
        + counter(&stats, "serve.auto_routed.gpu")
        + counter(&stats, "serve.auto_routed.fpga");
    assert_eq!(per_lane, total, "per-lane counters partition the total");
    let lane_counter = format!("serve.auto_routed.{routed}");
    assert!(counter(&stats, &lane_counter) >= 1, "routed lane counted in {lane_counter}");
    assert!(histogram_count(&stats, "serve.auto_predict_ns") >= 1, "prediction was timed");
    assert!(
        histogram_count(&stats, "serve.auto_error_pct") >= 1,
        "prediction error recorded after the run"
    );

    router.shutdown();
    direct.shutdown();
}

/// `auto` delegates device choice to the router; pinning a device is
/// contradictory and rejected at admission.
#[test]
fn auto_with_device_is_rejected() {
    let handle =
        start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }).unwrap();
    let body = format!(
        "{{\"format\":\"ms\",\"payload\":{:?},\"backend\":\"auto\",\"device\":\"k80\"}}",
        common::ms_payload(3)
    );
    let (status, _, resp) = common::post_scan(handle.addr(), &body);
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("device"), "{resp}");
    handle.shutdown();
}
