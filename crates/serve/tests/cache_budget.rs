//! Property test: the result cache never exceeds its byte budget, under
//! any interleaving of inserts, re-inserts, and recency-bumping gets.

use std::sync::Arc;

use omega_core::ScanParams;
use omega_gpu_sim::OverlapMode;
use omega_serve::{CacheKey, ResultCache};
use proptest::prelude::*;

fn key(digest: u64, grid: usize) -> CacheKey {
    CacheKey::new(
        digest,
        ScanParams { grid, ..ScanParams::default() },
        "CPU".to_string(),
        OverlapMode::Serialized,
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_never_exceeds_its_byte_budget(
        capacity in 300usize..4000,
        ops in proptest::collection::vec((0u64..24, 1usize..2, 1usize..900), 1..80),
    ) {
        let cache = ResultCache::with_capacity(capacity);
        for (digest, action, len) in ops {
            if action == 0 {
                cache.insert(key(digest, 8), Arc::new("x".repeat(len)));
            } else {
                // Gets reorder recency, which is what eviction keys on.
                let _ = cache.get(&key(digest, 8));
            }
            let stats = cache.stats();
            prop_assert!(
                stats.bytes <= stats.capacity_bytes,
                "cache at {} bytes exceeds budget {}",
                stats.bytes,
                stats.capacity_bytes
            );
        }
        // Entries that were inserted within budget stay retrievable
        // until evicted; occupancy accounting ends self-consistent.
        let stats = cache.stats();
        prop_assert!(stats.bytes <= stats.capacity_bytes);
    }
}
