//! Loopback HTTP helpers shared by the serve integration tests.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One raw round-trip: returns (status, full header block, body).
pub fn raw(addr: SocketAddr, request: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("write");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    let text = String::from_utf8_lossy(&buf).to_string();
    let status = text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    match text.find("\r\n\r\n") {
        Some(at) => (status, text[..at].to_string(), text[at + 4..].to_string()),
        None => (status, text, String::new()),
    }
}

pub fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

pub fn post_scan(addr: SocketAddr, body: &str) -> (u16, String, String) {
    raw(
        addr,
        format!("POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
            .as_bytes(),
    )
}

/// A small deterministic ms payload; `tag` varies the content.
pub fn ms_payload(tag: u64) -> String {
    let rows = ["10110100", "01011010", "11010001", "00101101", "10011010", "01100101"];
    let mut out = format!(
        "ms 6 1\n{tag}\n\n//\nsegsites: 8\npositions: 0.05 0.15 0.30 0.45 0.55 0.70 0.85 0.95\n"
    );
    for (i, row) in rows.iter().enumerate() {
        // Rotate row bits by `tag + i` so distinct tags yield distinct
        // matrices (and therefore distinct payload digests).
        let shift = ((tag as usize) + i) % row.len();
        out.push_str(&row[shift..]);
        out.push_str(&row[..shift]);
        out.push('\n');
    }
    out
}

pub fn scan_body(tag: u64, grid: usize) -> String {
    format!(
        "{{\"format\":\"ms\",\"payload\":{:?},\"params\":{{\"grid\":{grid}}}}}",
        ms_payload(tag)
    )
}

/// Extracts the job id from a `POST /scan` / `GET /jobs/<id>` body.
pub fn job_id(body: &str) -> String {
    let v = omega_obs::parse_json(body).expect("job body parses");
    v.get("job").and_then(|x| x.as_str()).expect("job id present").to_string()
}

/// Polls `GET /jobs/<id>` until the job leaves queued/running; returns
/// the final response body.
pub fn poll_done(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "poll {id}: {body}");
        let state = omega_obs::parse_json(&body)
            .expect("job body parses")
            .get("state")
            .and_then(|v| v.as_str())
            .expect("state present")
            .to_string();
        match state.as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stuck in {state}");
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => return body,
        }
    }
}
