//! Loopback HTTP helpers shared by the serve integration tests.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One raw round-trip on a fresh connection: returns (status, full
/// header block, body). The server holds HTTP/1.1 connections open for
/// reuse, so the response is parsed by its framing (`Content-Length`
/// or chunked) rather than by waiting for EOF.
pub fn raw(addr: SocketAddr, request: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(request).expect("write");
    read_framed(&mut stream)
}

/// Reads one framed response off `stream`; the connection stays usable
/// afterwards if the server kept it alive.
pub fn read_framed(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 4096];
    let mut fill = |buf: &mut Vec<u8>, stream: &mut TcpStream| {
        let n = stream.read(&mut tmp).expect("read");
        assert!(n > 0, "connection closed mid-response: {:?}", String::from_utf8_lossy(buf));
        buf.extend_from_slice(&tmp[..n]);
    };
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at + 4;
        }
        fill(&mut buf, stream);
    };
    let head = String::from_utf8_lossy(&buf[..head_end - 4]).to_string();
    let status = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut content_length = 0usize;
    let mut chunked = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.trim().parse().unwrap_or(0),
            "transfer-encoding" => chunked = value.trim().eq_ignore_ascii_case("chunked"),
            _ => {}
        }
    }
    let mut rest = buf.split_off(head_end);
    let body = if chunked {
        let mut decoded = Vec::new();
        loop {
            let line_end = loop {
                if let Some(at) = rest.windows(2).position(|w| w == b"\r\n") {
                    break at;
                }
                fill(&mut rest, stream);
            };
            let size = usize::from_str_radix(String::from_utf8_lossy(&rest[..line_end]).trim(), 16)
                .expect("chunk size parses");
            rest.drain(..line_end + 2);
            if size == 0 {
                while rest.len() < 2 {
                    fill(&mut rest, stream);
                }
                break;
            }
            while rest.len() < size + 2 {
                fill(&mut rest, stream);
            }
            decoded.extend_from_slice(&rest[..size]);
            rest.drain(..size + 2);
        }
        decoded
    } else {
        while rest.len() < content_length {
            fill(&mut rest, stream);
        }
        rest.truncate(content_length);
        rest
    };
    (status, head, String::from_utf8_lossy(&body).to_string())
}

pub fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

pub fn post_scan(addr: SocketAddr, body: &str) -> (u16, String, String) {
    raw(
        addr,
        format!("POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
            .as_bytes(),
    )
}

/// A small deterministic ms payload; `tag` varies the content.
pub fn ms_payload(tag: u64) -> String {
    let rows = ["10110100", "01011010", "11010001", "00101101", "10011010", "01100101"];
    let mut out = format!(
        "ms 6 1\n{tag}\n\n//\nsegsites: 8\npositions: 0.05 0.15 0.30 0.45 0.55 0.70 0.85 0.95\n"
    );
    for (i, row) in rows.iter().enumerate() {
        // Rotate row bits by `tag + i` so distinct tags yield distinct
        // matrices (and therefore distinct payload digests).
        let shift = ((tag as usize) + i) % row.len();
        out.push_str(&row[shift..]);
        out.push_str(&row[..shift]);
        out.push('\n');
    }
    out
}

pub fn scan_body(tag: u64, grid: usize) -> String {
    format!(
        "{{\"format\":\"ms\",\"payload\":{:?},\"params\":{{\"grid\":{grid}}}}}",
        ms_payload(tag)
    )
}

/// Extracts the job id from a `POST /scan` / `GET /jobs/<id>` body.
pub fn job_id(body: &str) -> String {
    let v = omega_obs::parse_json(body).expect("job body parses");
    v.get("job").and_then(|x| x.as_str()).expect("job id present").to_string()
}

/// Polls `GET /jobs/<id>` until the job leaves queued/running; returns
/// the final response body.
pub fn poll_done(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "poll {id}: {body}");
        let state = omega_obs::parse_json(&body)
            .expect("job body parses")
            .get("state")
            .and_then(|v| v.as_str())
            .expect("state present")
            .to_string();
        match state.as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stuck in {state}");
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => return body,
        }
    }
}
