//! Keep-alive, response streaming, and request-framing hardening, over
//! real loopback connections.

mod common;

use std::io::Write;
use std::net::TcpStream;

use omega_serve::{start, ServeConfig};

fn boot() -> omega_serve::ServeHandle {
    start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() })
        .expect("daemon boots")
}

/// HTTP/1.1 defaults to keep-alive: one connection serves a whole
/// request sequence, and the daemon counts the reuses.
#[test]
fn one_connection_serves_many_requests() {
    let handle = boot();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    for _ in 0..4 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
        let (status, head, body) = common::read_framed(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "keep-alive advertised: {head}"
        );
    }

    let (status, _, stats) = common::get(addr, "/stats");
    assert_eq!(status, 200);
    let v = omega_obs::parse_json(&stats).expect("stats parse");
    let reuses = v
        .get("counters")
        .and_then(|c| c.get("serve.http_conn_reuses"))
        .and_then(|x| x.as_u64())
        .unwrap_or(0);
    assert!(reuses >= 3, "4 requests on one connection are 3 reuses, counted {reuses}");
    handle.shutdown();
}

/// `Connection: close` is honoured: the server answers and drops the
/// connection instead of waiting for more requests.
#[test]
fn connection_close_is_honoured() {
    let handle = boot();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    let (status, head, _) = common::read_framed(&mut stream);
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("connection: close"), "close echoed: {head}");
    // EOF must arrive promptly, not after the 10 s idle timeout.
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut rest).expect("read to eof");
    assert!(rest.is_empty(), "no bytes after a closed response");
    handle.shutdown();
}

/// Conflicting duplicate `Content-Length` headers are the classic
/// request-smuggling vector: the daemon must refuse to guess.
#[test]
fn conflicting_content_lengths_get_400_and_a_closed_connection() {
    let handle = boot();
    let (status, head, body) = common::raw(
        handle.addr(),
        b"POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhi",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("Content-Length"), "names the offending header: {body}");
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "a framing error poisons the connection: {head}"
    );
    handle.shutdown();
}

/// Repeating the *same* `Content-Length` is legal per RFC 9112 §6.3 and
/// must parse as one header.
#[test]
fn identical_duplicate_content_lengths_are_tolerated() {
    let handle = boot();
    let body = common::scan_body(1, 4);
    let request = format!(
        "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {len}\r\nContent-Length: {len}\r\n\r\n{body}",
        len = body.len()
    );
    let (status, _, response) = common::raw(handle.addr(), request.as_bytes());
    assert_eq!(status, 202, "{response}");
    handle.shutdown();
}

/// A result body at or above the streaming threshold goes out with
/// `Transfer-Encoding: chunked` and reassembles bit-identically.
#[test]
fn large_results_stream_chunked_and_roundtrip() {
    let handle = boot();
    let addr = handle.addr();

    // A big grid makes the per-position report large enough to cross
    // the chunked threshold (32 KiB).
    let body = common::scan_body(3, 3000);
    let (status, _, submit) = common::post_scan(addr, &body);
    assert_eq!(status, 202, "{submit}");
    let id = common::job_id(&submit);
    let done = common::poll_done(addr, &id);
    let first = omega_obs::parse_json(&done).expect("done body parses");
    assert_eq!(first.get("state").and_then(|v| v.as_str()), Some("done"), "{done}");

    let (status, head, replay) = common::post_scan(addr, &body);
    assert_eq!(status, 200, "cache hit expected: {replay}");
    assert!(
        head.to_ascii_lowercase().contains("transfer-encoding: chunked"),
        "a {}-byte body must stream: {head}",
        replay.len()
    );
    assert!(replay.len() >= 32 * 1024, "test premise: body crosses the threshold");
    // The replayed result carries the exact result bytes of the first
    // run: same digest-bearing JSON, byte for byte.
    assert_eq!(result_object(&done), result_object(&replay), "cached replay is bit-identical");
    handle.shutdown();
}

/// The balanced-brace `"result"` object of a job body, byte for byte.
/// (Surrounding fields such as timings differ between the poll and the
/// replay envelope; the result payload must not.)
fn result_object(body: &str) -> &str {
    let start = body.find("\"result\":").expect("result field present") + "\"result\":".len();
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return &body[start..start + i + 1];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced result object in {body:.120}");
}
