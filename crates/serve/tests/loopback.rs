//! End-to-end loopback tests: results served over HTTP are bit-identical
//! to direct `BatchDetector` runs, repeat requests are served from the
//! cache with identical bytes, hostile HTTP input yields 4xx (never a
//! panic), and shutdown drains queued work.
//!
//! These tests make no assertions on global metric counters — the
//! registry is process-wide and `tests/stats.rs` / `tests/admission.rs`
//! own those (each integration test file is its own process).

mod common;

use std::convert::Infallible;

use omega_accel::{Backend, BatchDetector};
use omega_core::ScanParams;
use omega_genome::ms::{read_ms, MsReadOptions};
use omega_serve::{start, ServeConfig};

fn boot(config: ServeConfig) -> omega_serve::ServeHandle {
    start(config).expect("daemon boots")
}

fn local() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }
}

/// The serve-side result must match a direct BatchDetector run byte for
/// byte: same parse path, same params, same deterministic JSON.
#[test]
fn served_scan_is_bit_identical_to_direct_batch_detector() {
    let handle = boot(local());
    let addr = handle.addr();

    let (status, _, body) = common::post_scan(addr, &common::scan_body(7, 4));
    assert_eq!(status, 202, "{body}");
    let id = common::job_id(&body);
    let final_body = common::poll_done(addr, &id);
    let parsed = omega_obs::parse_json(&final_body).unwrap();
    assert_eq!(parsed.get("state").unwrap().as_str(), Some("done"), "{final_body}");

    // The direct run, mirroring the request's parse path exactly.
    let alignments = read_ms(
        common::ms_payload(7).as_bytes(),
        MsReadOptions { region_len: omega_serve::job::DEFAULT_MS_LENGTH },
    )
    .unwrap();
    let params = ScanParams { threads: 1, grid: 4, ..ScanParams::default() };
    let detector = BatchDetector::new(params, Backend::Cpu).unwrap();
    let outcome = detector.run(alignments.into_iter().map(Ok::<_, Infallible>)).unwrap();
    let expected = omega_serve::job::result_json(&outcome);

    // The job body embeds the result JSON verbatim, so a substring
    // check is a byte-identity check.
    assert!(
        final_body.contains(&expected),
        "served result differs from direct run\nserved: {final_body}\nexpected fragment: {expected}"
    );
    handle.shutdown();
}

/// A repeat request completes inline (200, cached) with exactly the
/// same result bytes the first run produced.
#[test]
fn cache_hit_returns_identical_bytes() {
    let handle = boot(local());
    let addr = handle.addr();
    let body = common::scan_body(11, 4);

    let (status, _, first) = common::post_scan(addr, &body);
    assert_eq!(status, 202, "{first}");
    let first_done = common::poll_done(addr, &common::job_id(&first));

    let (status, _, second) = common::post_scan(addr, &body);
    assert_eq!(status, 200, "cache hit should complete inline: {second}");
    let parsed = omega_obs::parse_json(&second).unwrap();
    assert_eq!(parsed.get("cached"), Some(&omega_obs::JsonValue::Bool(true)));
    assert_eq!(parsed.get("state").unwrap().as_str(), Some("done"));

    // Both bodies carry the identical raw result member.
    let result_of = |body: &str| {
        let at = body.find("\"result\":{").expect("result member present");
        body[at..].to_string()
    };
    // Strip trailing non-result members: timing only exists on the
    // first body, so compare up to the result's closing position by
    // extracting through the parsed tree instead.
    let first_result = omega_obs::parse_json(&first_done).unwrap();
    let second_result = parsed;
    assert_eq!(
        first_result.get("result"),
        second_result.get("result"),
        "cached result must be identical\nfirst: {}\nsecond: {}",
        result_of(&first_done),
        result_of(&second)
    );
    handle.shutdown();
}

/// Malformed HTTP and hostile bodies produce 4xx responses and leave
/// the daemon healthy — never a panic, never a wedged acceptor.
#[test]
fn malformed_input_yields_4xx_not_panic() {
    let handle = boot(local());
    let addr = handle.addr();

    let (status, _, _) = common::raw(addr, b"TOTAL GARBAGE\r\n\r\n");
    assert_eq!(status, 400);

    let (status, _, _) = common::raw(addr, b"GET noslash HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400);

    // Declared body larger than the limit: rejected before buffering.
    let oversized =
        format!("POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", (8usize << 20) + 1);
    let (status, _, _) = common::raw(addr, oversized.as_bytes());
    assert_eq!(status, 413);

    // Oversized header block.
    let mut huge_head = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    huge_head.extend(std::iter::repeat_n(b'a', 20 * 1024));
    huge_head.extend_from_slice(b"\r\n\r\n");
    let (status, _, _) = common::raw(addr, &huge_head);
    assert_eq!(status, 431);

    // Chunked transfer encoding is unimplemented, not mis-parsed.
    let (status, _, _) =
        common::raw(addr, b"POST /scan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert_eq!(status, 501);

    // Valid HTTP, hostile payloads: each a clean 400 with a reason.
    for bad in [
        "not json at all",
        "{\"payload\":\"x\"}",                         // missing format
        "{\"format\":\"ms\",\"payload\":\"garbage\"}", // unparseable ms
        "{\"format\":\"tsv\",\"payload\":\"x\"}",      // unknown format
        "{\"format\":\"ms\",\"payload\":\"\",\"params\":{\"grid\":0}}", // invalid params
    ] {
        let (status, _, body) = common::post_scan(addr, bad);
        assert_eq!(status, 400, "payload {bad:?} => {body}");
        assert!(omega_obs::parse_json(&body).unwrap().get("error").is_some());
    }

    // Unknown routes and methods.
    let (status, _, _) = common::get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = common::raw(addr, b"DELETE /scan HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _, _) = common::get(addr, "/jobs/j999999");
    assert_eq!(status, 404);

    // After all of that, the daemon still serves.
    let (status, _, body) = common::get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(omega_obs::parse_json(&body).unwrap().get("status").unwrap().as_str(), Some("ok"));
    handle.shutdown();
}

/// Shutdown with work still queued finishes every admitted job before
/// returning (graceful drain), and the drain report proves it.
#[test]
fn shutdown_drains_queued_jobs_to_completion() {
    let handle = boot(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        start_paused: true,
        ..Default::default()
    });
    let addr = handle.addr();

    let mut ids = Vec::new();
    for tag in 20..23 {
        let (status, _, body) = common::post_scan(addr, &common::scan_body(tag, 4));
        assert_eq!(status, 202, "{body}");
        ids.push(common::job_id(&body));
    }
    assert_eq!(handle.queue_depth(), 3, "paused lanes hold the jobs");

    let report = handle.shutdown();
    for id in &ids {
        let parsed = omega_serve::JobId::parse(id).expect("wire id parses");
        let state = report.iter().find(|(rid, _)| *rid == parsed).map(|(_, s)| *s);
        assert_eq!(
            state,
            Some(omega_serve::JobState::Done),
            "job {id} not completed by drain: {report:?}"
        );
    }
}
