//! Crash-recovery integration: a daemon aborted without draining and
//! rebooted on the same `-data-dir` must recover its jobs, serve
//! byte-identical result bytes, and boot with a warm cache — and a
//! mangled write-ahead log must never panic the boot.

mod common;

use std::path::PathBuf;

use omega_serve::{start, ServeConfig, Wal};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("omega-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(dir: &std::path::Path, paused: bool) -> omega_serve::ServeHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: Some(dir.to_path_buf()),
        start_paused: paused,
        ..Default::default()
    })
    .expect("daemon boots")
}

fn counter(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, _, stats) = common::get(addr, "/stats");
    assert_eq!(status, 200);
    omega_obs::parse_json(&stats)
        .expect("stats parse")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

/// The balanced-brace `"result"` object of a job body, byte for byte.
fn result_object(body: &str) -> &str {
    let start = body.find("\"result\":").expect("result field present") + "\"result\":".len();
    let bytes = body.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes[start..].iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return &body[start..start + i + 1];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced result object");
}

/// Jobs admitted but never run (the crash strands them queued) are
/// re-enqueued on reboot and run to completion under their original
/// ids.
#[test]
fn queued_jobs_survive_an_abort_and_finish_after_reboot() {
    let dir = temp_dir("queued");
    let first = boot(&dir, true); // paused lanes: admitted jobs stay queued
    let addr = first.addr();

    let mut ids = Vec::new();
    for tag in 0..3u64 {
        let (status, _, body) = common::post_scan(addr, &common::scan_body(tag, 4));
        assert_eq!(status, 202, "{body}");
        ids.push(common::job_id(&body));
    }
    first.abort(); // simulated crash: no drain, queued jobs abandoned

    let second = boot(&dir, false);
    let addr = second.addr();
    assert!(counter(addr, "serve.jobs_recovered") >= 3, "recovered jobs counted");
    for (tag, id) in ids.iter().enumerate() {
        let done = common::poll_done(addr, id);
        let v = omega_obs::parse_json(&done).expect("job body parses");
        assert_eq!(v.get("state").and_then(|x| x.as_str()), Some("done"), "job {id}: {done}");
        // The recovered run must produce the same bytes a fresh
        // submission of the same payload yields (served as a hit).
        let (status, _, replay) = common::post_scan(addr, &common::scan_body(tag as u64, 4));
        assert_eq!(status, 200, "replay of recovered job is a cache hit: {replay}");
        assert_eq!(result_object(&done), result_object(&replay), "bit-identical result");
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Finished results come back byte-identical after a reboot, without a
/// detector run: the store rehydrates the cache and the job table.
#[test]
fn finished_results_rehydrate_byte_identical_with_a_warm_cache() {
    let dir = temp_dir("warm");
    let first = boot(&dir, false);
    let addr = first.addr();

    let body = common::scan_body(7, 6);
    let (status, _, submit) = common::post_scan(addr, &body);
    assert_eq!(status, 202, "{submit}");
    let id = common::job_id(&submit);
    let done_before = common::poll_done(addr, &id);
    first.abort();

    let second = boot(&dir, false);
    let addr = second.addr();
    assert!(counter(addr, "serve.store_rehydrated") >= 1, "cache rehydrated from disk");

    // The recovered record still answers under its original id, with
    // the exact result bytes of the pre-crash run.
    let (status, _, done_after) = common::get(addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{done_after}");
    let v = omega_obs::parse_json(&done_after).expect("job body parses");
    assert_eq!(v.get("state").and_then(|x| x.as_str()), Some("done"), "{done_after}");
    assert_eq!(result_object(&done_before), result_object(&done_after), "bit-identical");

    // And a repeat submission is an inline warm-cache hit — no new job,
    // no detector run.
    let misses_before = counter(addr, "serve.cache_misses");
    let (status, _, replay) = common::post_scan(addr, &body);
    assert_eq!(status, 200, "warm hit: {replay}");
    assert_eq!(result_object(&done_before), result_object(&replay), "bit-identical");
    assert_eq!(counter(addr, "serve.cache_misses"), misses_before, "no miss on warm cache");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/stats` exposes the durability plane when a data dir is configured.
#[test]
fn stats_report_persistence_state() {
    let dir = temp_dir("stats");
    let handle = boot(&dir, false);
    let (status, _, stats) = common::get(handle.addr(), "/stats");
    assert_eq!(status, 200);
    let v = omega_obs::parse_json(&stats).expect("stats parse");
    let p = v.get("persistence").expect("persistence object");
    assert_eq!(p.get("enabled"), Some(&omega_obs::JsonValue::Bool(true)));
    assert!(p.get("wal_bytes").and_then(|x| x.as_u64()).is_some(), "{stats}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Terminal jobs evicted by the retention cap answer 410 Gone — a
/// definitive "existed, no longer retained", distinct from 404.
#[test]
fn evicted_jobs_answer_410_gone() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        retain_jobs: 2,
        ..Default::default()
    })
    .expect("daemon boots");
    let addr = handle.addr();

    let mut ids = Vec::new();
    for tag in 0..6u64 {
        let (status, _, body) = common::post_scan(addr, &common::scan_body(tag, 4));
        assert_eq!(status, 202, "{body}");
        let id = common::job_id(&body);
        common::poll_done(addr, &id);
        ids.push(id);
    }
    // Retention keeps the newest two terminal records; the eviction
    // sweep is amortised, so drive it by the submissions above and
    // assert on the oldest id only once enough completions piled up.
    let (status, _, body) = common::get(addr, &format!("/jobs/{}", ids[0]));
    assert_eq!(status, 410, "oldest job must be evicted: {body}");
    assert!(body.contains("evicted"), "{body}");
    let (status, _, _) = common::get(addr, &format!("/jobs/{}", ids[ids.len() - 1]));
    assert_eq!(status, 200, "newest job still retained");
    // A never-issued id stays a plain 404.
    let (status, _, _) = common::get(addr, "/jobs/999999");
    assert_eq!(status, 404);
    handle.shutdown();
}

/// Randomized corrupt-tail sweep: any truncation or byte flip of a
/// valid log must replay without panicking, and records before the
/// mangled point must survive.
#[test]
fn mangled_wal_tails_never_panic() {
    let dir = temp_dir("mangle");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("jobs.wal");
    {
        let (wal, _) = Wal::open_and_replay(&path).expect("fresh wal");
        for id in 1..=8u64 {
            wal.append_admit(id, &format!("{{\"tag\":{id}}}"));
        }
    }
    let pristine = std::fs::read(&path).expect("read wal");
    assert!(!pristine.is_empty());

    // Deterministic LCG so failures reproduce.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = |bound: usize| {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        ((state >> 33) as usize) % bound.max(1)
    };
    for case in 0..64 {
        let mut bytes = pristine.clone();
        if case % 2 == 0 {
            bytes.truncate(next(bytes.len()));
        } else {
            let at = next(bytes.len());
            bytes[at] ^= 1 << next(8);
        }
        std::fs::write(&path, &bytes).expect("write mangled");
        let (wal, replay) = Wal::open_and_replay(&path).expect("mangled wal still opens");
        assert!(replay.jobs.len() <= 8, "no invented jobs");
        // The log must be writable again after a corrupt tail was cut.
        wal.append_admit(100 + case as u64, "{\"tag\":\"post-mangle\"}");
        let (_, reread) = Wal::open_and_replay(&path).expect("reopen after repair");
        assert!(
            reread.jobs.iter().any(|j| j.id == 100 + case as u64),
            "post-repair append survives (case {case})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
