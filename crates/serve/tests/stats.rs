//! `/stats` and cache-counter behaviour. Lives in its own file (= its
//! own process) because the metrics registry is process-global: counter
//! delta assertions here must not race submissions made by other
//! integration tests.

mod common;

use omega_serve::{start, ServeConfig};

fn counter(stats: &omega_obs::JsonValue, name: &str) -> u64 {
    stats.get("counters").and_then(|c| c.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn histogram_count(stats: &omega_obs::JsonValue, name: &str) -> u64 {
    stats
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

fn fetch_stats(addr: std::net::SocketAddr) -> omega_obs::JsonValue {
    let (status, _, body) = common::get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    omega_obs::parse_json(&body).expect("stats body is valid JSON")
}

/// A repeat request bumps `serve.cache_hits` and does not invoke a
/// detector: no new batch is recorded and the miss count is unchanged.
#[test]
fn cache_hit_increments_counter_without_running_a_batch() {
    let handle =
        start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }).unwrap();
    let addr = handle.addr();
    let body = common::scan_body(31, 4);

    let (status, _, first) = common::post_scan(addr, &body);
    assert_eq!(status, 202, "{first}");
    common::poll_done(addr, &common::job_id(&first));

    let before = fetch_stats(addr);
    let hits0 = counter(&before, "serve.cache_hits");
    let misses0 = counter(&before, "serve.cache_misses");
    let batches0 = histogram_count(&before, "serve.batch_size");
    assert!(misses0 >= 1, "first submission must have missed");

    let (status, _, second) = common::post_scan(addr, &body);
    assert_eq!(status, 200, "{second}");

    let after = fetch_stats(addr);
    assert_eq!(counter(&after, "serve.cache_hits"), hits0 + 1, "hit counter must increment");
    assert_eq!(counter(&after, "serve.cache_misses"), misses0, "a hit is not a miss");
    assert_eq!(
        histogram_count(&after, "serve.batch_size"),
        batches0,
        "a cache hit must not invoke a detector"
    );
    handle.shutdown();
}

/// `/stats` is valid JSON and lists every serve instrument, including
/// spans (which have no metrics-snapshot entry) via the inventory array.
#[test]
fn stats_lists_every_serve_instrument() {
    let handle =
        start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() }).unwrap();
    let stats = fetch_stats(handle.addr());

    let listed: Vec<String> = stats
        .get("instruments")
        .and_then(|v| v.as_array())
        .expect("instruments array present")
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    for name in omega_obs::INSTRUMENTS.iter().filter(|n| n.starts_with("serve.")) {
        assert!(listed.iter().any(|l| l == name), "{name} missing from /stats instruments");
    }

    // Counters/gauges/histograms registered at boot appear with values
    // even before any request touches them.
    for name in [
        "serve.jobs",
        "serve.rejected",
        "serve.cache_hits",
        "serve.cache_misses",
        "serve.cache_evictions",
    ] {
        assert!(
            stats.get("counters").and_then(|c| c.get(name)).is_some(),
            "{name} missing from counters"
        );
    }
    assert!(stats.get("gauges").and_then(|g| g.get("serve.queue_depth")).is_some());
    for name in ["serve.batch_size", "serve.latency.cpu", "serve.latency.gpu", "serve.latency.fpga"]
    {
        assert!(
            stats.get("histograms").and_then(|h| h.get(name)).is_some(),
            "{name} missing from histograms"
        );
    }
    assert!(stats.get("queue").and_then(|q| q.get("capacity_per_lane")).is_some());
    assert!(stats.get("cache").and_then(|c| c.get("capacity_bytes")).is_some());
    handle.shutdown();
}
