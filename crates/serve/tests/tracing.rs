//! Telemetry-plane integration tests: tracing must never change scan
//! results, traced requests echo their context and land well-formed
//! span trees in the flight recorder, `/metrics` exposes parseable
//! Prometheus text, unknown trace ids 404, and `/healthz` reports the
//! upgraded liveness payload.

mod common;

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use omega_serve::{start, ServeConfig, ServeHandle};

fn boot() -> ServeHandle {
    start(ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() })
        .expect("daemon boots")
}

/// POST /scan with an explicit `X-Omega-Trace` header.
fn post_traced(addr: SocketAddr, body: &str, trace: &str) -> (u16, String, String) {
    common::raw(
        addr,
        format!(
            "POST /scan HTTP/1.1\r\nHost: t\r\nX-Omega-Trace: {trace}\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Fetches `/traces/<hex>` with a short retry window: the span tree is
/// published moments after the job table flips to done, so a poller
/// can observe the gap.
fn get_trace(addr: SocketAddr, hex: &str) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, _, body) = common::get(addr, &format!("/traces/{hex}"));
        if status == 200 || Instant::now() >= deadline {
            return (status, body);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Tracing must be observational only: the same payload scanned on a
/// traced daemon and an untraced daemon produces bit-identical result
/// JSON.
#[test]
fn traced_scan_result_is_bit_identical_to_untraced() {
    let plain = boot();
    let (status, _, body) = common::post_scan(plain.addr(), &common::scan_body(31, 4));
    assert_eq!(status, 202, "{body}");
    let plain_done = common::poll_done(plain.addr(), &common::job_id(&body));
    plain.shutdown();

    let traced = boot();
    let (status, _, body) =
        post_traced(traced.addr(), &common::scan_body(31, 4), "00000000beef0001-0000000000000000");
    assert_eq!(status, 202, "{body}");
    let traced_done = common::poll_done(traced.addr(), &common::job_id(&body));
    traced.shutdown();

    let plain_json = omega_obs::parse_json(&plain_done).unwrap();
    let traced_json = omega_obs::parse_json(&traced_done).unwrap();
    assert_eq!(plain_json.get("state").unwrap().as_str(), Some("done"), "{plain_done}");
    assert_eq!(traced_json.get("state").unwrap().as_str(), Some("done"), "{traced_done}");
    assert_eq!(
        plain_json.get("result"),
        traced_json.get("result"),
        "tracing changed the scan result\nplain: {plain_done}\ntraced: {traced_done}"
    );
}

/// A traced request echoes its trace context in the response headers
/// and publishes a well-formed span tree retrievable by id; a traced
/// cache hit records the lookup stage.
#[test]
fn traced_request_echoes_context_and_records_span_tree() {
    let handle = boot();
    let addr = handle.addr();
    let body = common::scan_body(37, 4);

    // Miss path: queued job, trace completes when the lane finishes.
    let (status, head, resp) = post_traced(addr, &body, "00000000dead0001-0000000000000000");
    assert_eq!(status, 202, "{resp}");
    assert!(
        head.to_ascii_lowercase().contains("x-omega-trace: 00000000dead0001-"),
        "response must echo the trace context: {head}"
    );
    common::poll_done(addr, &common::job_id(&resp));

    let (status, tree_body) = get_trace(addr, "00000000dead0001");
    assert_eq!(status, 200, "trace not recorded: {tree_body}");
    let tree = omega_obs::parse_json(&tree_body).unwrap();
    let root = tree.get("root").expect("trace has a root span");
    assert_eq!(root.get("name").unwrap().as_str(), Some("serve.request"));
    let spans = tree.get("spans").and_then(|s| s.as_array()).expect("spans array");
    let names: Vec<&str> = spans.iter().filter_map(|s| s.get("name")?.as_str()).collect();
    assert!(names.contains(&"serve.queue_wait"), "missing queue_wait span: {names:?}");
    assert!(names.contains(&"serve.kernel"), "missing kernel span: {names:?}");

    // Hit path: inline completion, trace published before the response.
    let (status, _, resp) = post_traced(addr, &body, "00000000dead0002-0000000000000000");
    assert_eq!(status, 200, "expected inline cache hit: {resp}");
    let (status, tree_body) = get_trace(addr, "00000000dead0002");
    assert_eq!(status, 200, "cache-hit trace not recorded: {tree_body}");
    let tree = omega_obs::parse_json(&tree_body).unwrap();
    let spans = tree.get("spans").and_then(|s| s.as_array()).expect("spans array");
    let names: Vec<&str> = spans.iter().filter_map(|s| s.get("name")?.as_str()).collect();
    assert!(names.contains(&"serve.cache_lookup"), "missing cache_lookup span: {names:?}");

    handle.shutdown();
}

/// Unknown or malformed trace ids produce 404, never a panic.
#[test]
fn unknown_trace_id_is_404() {
    let handle = boot();
    let addr = handle.addr();
    let (status, _, _) = common::get(addr, "/traces/ffffffffffffff99");
    assert_eq!(status, 404);
    let (status, _, _) = common::get(addr, "/traces/not-hex-at-all");
    assert_eq!(status, 404);
    handle.shutdown();
}

/// `/metrics` serves non-empty, parseable Prometheus text exposition
/// with the serve instruments present.
#[test]
fn metrics_endpoint_parses_as_prometheus() {
    let handle = boot();
    let addr = handle.addr();

    // Drive one request so request counters are non-zero.
    let (status, _, body) = common::post_scan(addr, &common::scan_body(41, 4));
    assert_eq!(status, 202, "{body}");
    common::poll_done(addr, &common::job_id(&body));

    let (status, head, text) = common::get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase().contains("content-type: text/plain"),
        "exposition must be text/plain: {head}"
    );
    let samples = omega_obs::parse_prometheus(&text).expect("exposition parses");
    assert!(samples > 0, "exposition is empty");
    assert!(text.contains("omega_serve_cache_misses_total"), "missing serve counters:\n{text}");
    assert!(text.contains("omega_serve_kernel_ns"), "missing serve stage histograms:\n{text}");
    handle.shutdown();
}

/// `/healthz` reports liveness plus uptime, build identity, and
/// per-lane queue depths.
#[test]
fn healthz_reports_uptime_build_and_queue_depths() {
    let handle = boot();
    let (status, _, body) = common::get(handle.addr(), "/healthz");
    assert_eq!(status, 200);
    let v = omega_obs::parse_json(&body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"), "{body}");
    assert!(v.get("uptime_secs").and_then(|x| x.as_u64()).is_some(), "{body}");
    let build = v.get("build").expect("build info");
    assert!(build.get("name").and_then(|x| x.as_str()).is_some(), "{body}");
    assert!(build.get("version").and_then(|x| x.as_str()).is_some(), "{body}");
    let depths = v.get("queue_depths").expect("queue depths");
    for lane in ["cpu", "gpu", "fpga"] {
        assert!(depths.get(lane).and_then(|x| x.as_u64()).is_some(), "no {lane} depth: {body}");
    }
    assert_eq!(v.get("draining"), Some(&omega_obs::JsonValue::Bool(false)), "{body}");
    handle.shutdown();
}
