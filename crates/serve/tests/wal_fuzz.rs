//! Property tests: no mutilation of the write-ahead log — truncation,
//! bit flips, or outright garbage — may panic the replay, invent jobs,
//! or leave the log unappendable.

use std::path::PathBuf;

use omega_serve::{RecoveredState, Wal};
use proptest::prelude::*;

fn temp_wal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("omega-wal-fuzz-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.wal"))
}

/// A pristine log of `n` admitted jobs (ids 1..=n), job `1` finished.
fn pristine(path: &std::path::Path, n: u64) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (wal, _) = Wal::open_and_replay(path).expect("fresh wal");
    for id in 1..=n {
        wal.append_admit(id, &format!("{{\"tag\":{id}}}"));
    }
    wal.append_terminal(1, omega_serve::JobState::Done, Some(0xfeed_beef_dead_cafe));
    drop(wal);
    std::fs::read(path).expect("read wal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any truncation point leaves a log that replays cleanly, recovers
    // only genuinely-written jobs, and accepts new appends.
    #[test]
    fn truncated_tails_replay_without_panic(n in 1u64..12, cut_frac in 0.0f64..1.0) {
        let path = temp_wal("truncate");
        let bytes = pristine(&path, n);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).expect("truncate");

        let (wal, replay) = Wal::open_and_replay(&path).expect("replay never errors");
        prop_assert!(replay.jobs.len() as u64 <= n, "no invented jobs");
        for job in &replay.jobs {
            prop_assert!(job.id >= 1 && job.id <= n, "unknown id {}", job.id);
            if job.id == 1 {
                if let RecoveredState::Done { key } = job.state {
                    prop_assert_eq!(key, 0xfeed_beef_dead_cafe, "done key survives intact");
                }
            }
        }
        // A repaired log must accept appends and replay them back.
        wal.append_admit(1000, "{\"tag\":\"post-cut\"}");
        drop(wal);
        let (_, reread) = Wal::open_and_replay(&path).expect("reopen");
        prop_assert!(reread.jobs.iter().any(|j| j.id == 1000), "post-repair append lost");
    }

    // Any single bit flip is either detected (record dropped, tail
    // cut) or harmless — never a panic, never a corrupted done-key.
    #[test]
    fn bit_flips_replay_without_panic(
        n in 1u64..12,
        at_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = temp_wal("bitflip");
        let mut bytes = pristine(&path, n);
        let at = (((bytes.len() - 1) as f64) * at_frac) as usize;
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write mangled");

        let (_, replay) = Wal::open_and_replay(&path).expect("replay never errors");
        prop_assert!(replay.jobs.len() as u64 <= n, "no invented jobs");
        for job in &replay.jobs {
            if let RecoveredState::Done { key } = job.state {
                prop_assert_eq!(key, 0xfeed_beef_dead_cafe, "checksum admits no altered key");
            }
        }
    }

    // Pure garbage — bytes that were never a log — replays to an empty
    // job set without panicking.
    #[test]
    fn garbage_files_replay_empty(garbage in proptest::collection::vec(0u8..255, 0..512)) {
        let path = temp_wal("garbage");
        std::fs::write(&path, &garbage).expect("write garbage");
        let (_, replay) = Wal::open_and_replay(&path).expect("replay never errors");
        // A checksum collision over random bytes is astronomically
        // unlikely; any recovered record would be one.
        prop_assert!(replay.jobs.is_empty(), "garbage produced jobs: {:?}", replay.jobs.len());
    }
}
