//! One dataset, three platforms: runs the complete sweep-detection flow
//! on the CPU and on the simulated GPU and FPGA systems, printing the
//! Fig. 14-style LD/ω execution-time split and the speedups over one CPU
//! core.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // A mid-size workload (scaled-down "balanced" shape; see DESIGN.md).
    let neutral = NeutralParams { n_samples: 200, theta: 1.0, rho: 0.0, region_len_bp: 500_000 };
    let mut rng = StdRng::seed_from_u64(99);
    let alignment =
        simulate_fixed_sites(&neutral, 800, &mut rng).expect("simulation parameters are valid");
    println!(
        "dataset: {} SNPs x {} samples over {} bp",
        alignment.n_sites(),
        alignment.n_samples(),
        alignment.region_len()
    );

    let params = ScanParams { grid: 60, min_win: 2_000, max_win: 60_000, ..ScanParams::default() };
    let backends = [
        Backend::Cpu,
        Backend::Gpu(GpuDevice::radeon_hd8750m()),
        Backend::Gpu(GpuDevice::tesla_k80()),
        Backend::Fpga(FpgaDevice::zcu102()),
        Backend::Fpga(FpgaDevice::alveo_u200()),
    ];

    println!(
        "\n{:<24} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "backend", "LD (ms)", "omega (ms)", "total (ms)", "LD %", "speedup"
    );
    let mut cpu_total = None;
    let mut peak = None;
    for backend in backends {
        let detector = SweepDetector::new(params, backend).expect("valid params");
        let outcome = detector.detect(&alignment);
        let total = outcome.total_seconds();
        if outcome.backend == "CPU" {
            cpu_total = Some(total);
        }
        let speedup = cpu_total.map(|c| c / total).unwrap_or(1.0);
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>8.1}% {:>8.1}x",
            outcome.backend,
            outcome.ld_seconds * 1e3,
            outcome.omega_seconds * 1e3,
            total * 1e3,
            outcome.ld_share() * 100.0,
            speedup
        );
        // All backends must agree on the functional answer.
        let report = Report::from_results(&outcome.results);
        let p = report.peak().map(|p| (p.pos_bp, p.omega));
        match (peak, p) {
            (None, found) => peak = found,
            (Some(expect), Some(found)) => assert_eq!(expect, found, "backends disagree"),
            _ => {}
        }
    }
    if let Some((pos, omega)) = peak {
        println!("\nall backends agree: peak omega {omega:.3} at {pos} bp");
    }
}
