//! Robustness under non-equilibrium demography: does a population
//! bottleneck alone fool the ω scan into calling sweeps?
//!
//! The paper motivates LD-based detection with the Crisci et al. result
//! that OmegaPlus keeps its power "under both equilibrium and
//! non-equilibrium conditions". This example measures that directly:
//! calibrate a max-ω threshold on the equilibrium null, then count how
//! often (a) equilibrium replicates, (b) bottleneck replicates, and
//! (c) true sweep replicates exceed it.
//!
//! ```text
//! cargo run --release --example demography
//! ```

use omegaplus_rs::accel::{calibrate_threshold, detection_power, false_positive_rate};
use omegaplus_rs::mssim::Demography;
use omegaplus_rs::prelude::*;

fn main() {
    let params =
        ScanParams { grid: 40, min_win: 1_000, max_win: 50_000, min_snps_per_side: 6, threads: 1 };
    let neutral = NeutralParams { n_samples: 50, theta: 200.0, rho: 60.0, region_len_bp: 200_000 };
    let reps = 20;

    println!("calibrating max-omega threshold on {reps} equilibrium replicates...");
    let threshold = calibrate_threshold(&params, &neutral, None, reps, 0.9, 11)
        .expect("valid simulation parameters");
    println!(
        "90% null quantile: omega = {:.2} (from {} replicates)\n",
        threshold.threshold, threshold.replicates
    );

    let equilibrium_fpr =
        false_positive_rate(&params, &neutral, &Demography::constant(), &threshold, reps, 12)
            .expect("valid parameters");

    let mild = Demography::bottleneck(0.05, 0.2, 0.2).expect("valid history");
    let mild_fpr =
        false_positive_rate(&params, &neutral, &mild, &threshold, reps, 13).expect("valid");

    let severe = Demography::bottleneck(0.02, 0.3, 0.02).expect("valid history");
    let severe_fpr =
        false_positive_rate(&params, &neutral, &severe, &threshold, reps, 14).expect("valid");

    let sweep = SweepParams { position: 0.5, alpha: 6.0, swept_fraction: 1.0 };
    let power = detection_power(&params, &neutral, &sweep, &threshold, reps, 15).expect("valid");

    println!("scenario                       call rate");
    println!("---------------------------------------");
    println!("equilibrium neutral            {:>8.0}%", equilibrium_fpr * 100.0);
    println!("mild bottleneck (20% for 0.2)  {:>8.0}%", mild_fpr * 100.0);
    println!("severe bottleneck (2% for 0.3) {:>8.0}%", severe_fpr * 100.0);
    println!("complete selective sweep       {:>8.0}%  <- detection power", power * 100.0);
    println!();
    println!(
        "bottlenecks inflate the false-positive rate above the nominal {:.0}%,\n\
         which is why OmegaPlus workflows calibrate the threshold on a\n\
         demography-matched null (pass the history to calibrate_threshold).",
        (1.0 - threshold.quantile) * 100.0
    );
}
