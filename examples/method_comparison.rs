//! The Crisci-style method bake-off the paper cites when choosing to
//! accelerate OmegaPlus: detection power of the LD-based ω statistic vs
//! the haplotype-based iHS and the SFS-based windowed Tajima's D, on
//! matched neutral/sweep replicates.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use omegaplus_rs::baselines::comparison::{IhsStat, OmegaStat, TajimaStat};
use omegaplus_rs::baselines::{power_table, IhsParams, SweepStatistic};
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let neutral = NeutralParams { n_samples: 50, theta: 200.0, rho: 60.0, region_len_bp: 200_000 };
    // A strong, nearly complete sweep (90% of haplotypes captured), so
    // both the LD pattern and the long-haplotype signal are present.
    let sweep = SweepParams { position: 0.5, alpha: 5.0, swept_fraction: 0.9 };
    let reps = 15;

    println!("simulating {reps} neutral + {reps} sweep replicates...");
    let mut rng = StdRng::seed_from_u64(77);
    let mut neutral_reps = Vec::new();
    let mut sweep_reps = Vec::new();
    for _ in 0..reps {
        neutral_reps.push(simulate_neutral(&neutral, &mut rng).expect("valid params"));
        let bg = simulate_neutral(&neutral, &mut rng).expect("valid params");
        sweep_reps.push(omegaplus_rs::mssim::overlay_sweep(&bg, &sweep, &mut rng));
    }

    let omega = OmegaStat::new(ScanParams {
        grid: 40,
        min_win: 1_000,
        max_win: 50_000,
        min_snps_per_side: 6,
        threads: 1,
    })
    .expect("valid params");
    let ihs = IhsStat::new(IhsParams::default());
    let tajima = TajimaStat { window_bp: 25_000, step_bp: 12_500 };
    let methods: Vec<&dyn SweepStatistic> = vec![&omega, &ihs, &tajima];

    println!("calibrating 90% neutral thresholds and measuring power...\n");
    let table = power_table(&methods, &neutral_reps, &sweep_reps, 0.9);
    println!("{:<22} {:>12} {:>8}", "method", "threshold", "power");
    println!("{}", "-".repeat(44));
    for row in &table {
        println!("{:<22} {:>12.3} {:>7.0}%", row.method, row.threshold, row.power * 100.0);
    }
    println!(
        "\nCrisci et al. (cited by the paper, §I) found the LD-based OmegaPlus the most\n\
         powerful on coalescent sweep simulations. The ranking above differs: the\n\
         star-like sweep overlay used here (DESIGN.md) produces an exaggerated SFS\n\
         footprint (hard monomorphization around the site) relative to its cross-flank\n\
         LD contrast, which favours the SFS statistic — a property of the data\n\
         generator, not of the detectors. The harness itself is method-agnostic:\n\
         plug in any SweepStatistic to re-stage the comparison."
    );
}
