//! Quickstart: simulate a dataset with a planted selective sweep, scan it
//! with the ω statistic, and print the resulting profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. Simulate: 50 haplotypes, theta 60, a complete sweep at 50 % of a
    //    200 kb region.
    let neutral = NeutralParams { n_samples: 50, theta: 60.0, rho: 60.0, region_len_bp: 200_000 };
    let sweep = SweepParams { position: 0.5, alpha: 12.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(2022);
    let alignment =
        simulate_sweep(&neutral, &sweep, &mut rng).expect("simulation parameters are valid");
    println!(
        "simulated {} SNPs x {} samples over {} bp (sweep planted at {} bp)",
        alignment.n_sites(),
        alignment.n_samples(),
        alignment.region_len(),
        alignment.region_len() / 2,
    );

    // 2. Scan: 40 grid positions, windows between 1 kb and 50 kb.
    let scanner = OmegaScanner::new(ScanParams {
        grid: 40,
        min_win: 1_000,
        max_win: 50_000,
        ..ScanParams::default()
    })
    .expect("scan parameters are valid");
    let outcome = scanner.scan(&alignment);

    // 3. Report: ASCII ω profile plus the sweep call.
    let report = Report::new(&outcome);
    let peak = report.peak().expect("interior positions are scorable");
    println!("\n position      omega");
    for r in &outcome.results {
        let bar_len = if peak.omega > 0.0 { (40.0 * r.omega / peak.omega) as usize } else { 0 };
        println!(" {:>9}  {:>9.3} {}", r.pos_bp, r.omega, "#".repeat(bar_len));
    }
    match report.call_sweep(3.0) {
        Some(call) => println!(
            "\nsweep called at {} bp (omega {:.2}, window {}..{})",
            call.pos_bp, call.omega, call.left_bp, call.right_bp
        ),
        None => println!("\nno sweep called (peak not a strong outlier)"),
    }
    println!(
        "timing: LD {:.3} ms, omega {:.3} ms over {} omega evaluations",
        outcome.timings.ld().as_secs_f64() * 1e3,
        outcome.timings.omega.as_secs_f64() * 1e3,
        outcome.stats.omega_evaluations,
    );
}
