//! Detection power experiment: how reliably does the ω scan distinguish
//! sweep replicates from neutral ones?
//!
//! Mirrors the motivating use-case of the paper's introduction (and the
//! Crisci et al. evaluations it cites): for each of `REPS` replicates,
//! simulate one neutral and one sweep dataset with identical parameters,
//! scan both, and compare peak-to-mean ω ratios.
//!
//! ```text
//! cargo run --release --example sweep_scan
//! ```

use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const REPS: u64 = 15;

fn peak_ratio(outcome: &ScanOutcome) -> f64 {
    let report = Report::new(outcome);
    match report.peak() {
        Some(p) if report.mean_omega() > 0.0 => p.omega as f64 / report.mean_omega(),
        _ => 0.0,
    }
}

fn main() {
    let neutral = NeutralParams { n_samples: 40, theta: 50.0, rho: 20.0, region_len_bp: 150_000 };
    let sweep = SweepParams { position: 0.5, alpha: 15.0, swept_fraction: 1.0 };
    let scanner = OmegaScanner::new(ScanParams {
        grid: 30,
        min_win: 1_000,
        max_win: 40_000,
        ..ScanParams::default()
    })
    .expect("valid params");

    println!("rep  neutral-ratio  sweep-ratio  sweep-peak-offset(bp)");
    let mut neutral_ratios = Vec::new();
    let mut sweep_ratios = Vec::new();
    let mut hits = 0u64;
    for rep in 0..REPS {
        let mut rng = StdRng::seed_from_u64(1000 + rep);
        let neutral_data = simulate_neutral(&neutral, &mut rng).expect("valid params");
        let sweep_data = simulate_sweep(&neutral, &sweep, &mut rng).expect("valid params");

        let n_out = scanner.scan(&neutral_data);
        let s_out = scanner.scan(&sweep_data);
        let nr = peak_ratio(&n_out);
        let sr = peak_ratio(&s_out);
        neutral_ratios.push(nr);
        sweep_ratios.push(sr);

        let true_site = sweep_data.region_len() / 2;
        let offset =
            Report::new(&s_out).peak().map(|p| p.pos_bp.abs_diff(true_site)).unwrap_or(u64::MAX);
        // A hit: the sweep replicate's peak lands within 20% of the region
        // of the true sweep site.
        if offset < sweep_data.region_len() / 5 {
            hits += 1;
        }
        println!("{rep:>3}  {nr:>13.2}  {sr:>11.2}  {offset:>20}");
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean peak/mean omega: neutral {:.2}, sweep {:.2}",
        mean(&neutral_ratios),
        mean(&sweep_ratios)
    );
    println!("sweep localization hit rate: {hits}/{REPS}");
    if mean(&sweep_ratios) > mean(&neutral_ratios) {
        println!(
            "=> sweep replicates show the elevated omega outliers the statistic is built to find"
        );
    }
}
