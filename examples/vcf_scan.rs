//! End-to-end scan of a VCF cohort: generate a diploid VCF from simulated
//! haplotypes, parse it back, filter by minor-allele frequency, and scan.
//!
//! Demonstrates the input pipeline a user with real variant calls would
//! follow (the same path the `omegaplus` CLI takes with `-format vcf`).
//!
//! ```text
//! cargo run --release --example vcf_scan
//! ```

use std::fmt::Write as _;

use omegaplus_rs::genome::filter::SiteFilter;
use omegaplus_rs::genome::vcf::read_vcf;
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Renders an alignment as a diploid VCF (pairs of haplotypes become
/// phased genotypes).
fn to_vcf(a: &Alignment) -> String {
    assert!(a.n_samples().is_multiple_of(2), "diploid VCF needs an even haplotype count");
    let n_ind = a.n_samples() / 2;
    let mut out =
        String::from("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT");
    for i in 0..n_ind {
        let _ = write!(out, "\tind{i}");
    }
    out.push('\n');
    for s in 0..a.n_sites() {
        let site = a.site(s);
        let _ = write!(out, "chr1\t{}\t.\tA\tG\t.\tPASS\t.\tGT", a.position(s));
        for i in 0..n_ind {
            let g = |h: usize| match site.get(h) {
                omegaplus_rs::genome::Allele::One => "1",
                omegaplus_rs::genome::Allele::Zero => "0",
                omegaplus_rs::genome::Allele::Missing => ".",
            };
            let _ = write!(out, "\t{}|{}", g(2 * i), g(2 * i + 1));
        }
        out.push('\n');
    }
    out
}

fn main() {
    // Simulate 60 haplotypes (30 diploid individuals) with a sweep.
    let neutral = NeutralParams { n_samples: 60, theta: 50.0, rho: 40.0, region_len_bp: 120_000 };
    let sweep = SweepParams { position: 0.4, alpha: 12.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(7);
    let truth = simulate_sweep(&neutral, &sweep, &mut rng).expect("valid params");

    // Round-trip through VCF.
    let vcf_text = to_vcf(&truth);
    println!("generated VCF: {} bytes, {} records", vcf_text.len(), truth.n_sites());
    let parsed = read_vcf(vcf_text.as_bytes()).expect("round-trip VCF parses");
    assert_eq!(parsed.alignment.n_samples(), truth.n_samples());
    assert_eq!(parsed.alignment.n_sites(), truth.n_sites());
    println!(
        "parsed contig {:?}: {} sites x {} haplotypes",
        parsed.contig,
        parsed.alignment.n_sites(),
        parsed.alignment.n_samples()
    );

    // Filter: drop rare variants (MAF < 5 %), then scan.
    let filtered = SiteFilter { min_maf: 0.05, ..SiteFilter::default() }.apply(&parsed.alignment);
    println!("after MAF >= 5% filter: {} sites", filtered.n_sites());

    let scanner = OmegaScanner::new(ScanParams {
        grid: 25,
        min_win: 1_000,
        max_win: 40_000,
        ..ScanParams::default()
    })
    .expect("valid params");
    let outcome = scanner.scan(&filtered);
    let report = Report::new(&outcome);
    let peak = report.peak().expect("scorable positions exist");
    let true_site = (0.4 * truth.region_len() as f64) as u64;
    println!(
        "peak omega {:.2} at {} bp (true sweep site {} bp, offset {} bp)",
        peak.omega,
        peak.pos_bp,
        true_site,
        peak.pos_bp.abs_diff(true_site)
    );
}
