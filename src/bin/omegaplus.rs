//! `omegaplus` — command-line selective sweep scanner, mirroring the
//! OmegaPlus tool the paper accelerates.
//!
//! ```text
//! omegaplus -name RUN -input FILE [-format ms|fasta|vcf] [-length BP]
//!           [-grid N] [-minwin BP] [-maxwin BP] [-minsnps N]
//!           [-threads N] [-backend cpu|gpu|fpga] [-device NAME]
//!           [-report PATH]
//! ```
//!
//! With `-backend gpu|fpga` the scan runs through the simulated
//! accelerator backends and the summary reports the modelled LD/ω time
//! split alongside the (identical) functional results.
//!
//! Observability: `-trace PATH` streams span and metrics events to a JSON
//! Lines file (schema in DESIGN.md), `-metrics` prints the metrics
//! registry as a table after the scan.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use omega_accel::{Backend, SweepDetector};
use omega_core::{Report, ScanParams};
use omega_fpga_sim::FpgaDevice;
use omega_genome::filter::SiteFilter;
use omega_genome::ms::{read_ms, MsReadOptions};
use omega_genome::{fasta, vcf, Alignment};
use omega_gpu_sim::GpuDevice;

struct Cli {
    name: String,
    input: String,
    format: String,
    length: u64,
    params: ScanParams,
    backend_kind: String,
    device: String,
    report_path: Option<String>,
    trace_path: Option<String>,
    metrics: bool,
    min_maf: f64,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        name: "run".into(),
        input: String::new(),
        format: "ms".into(),
        length: 100_000,
        params: ScanParams::default(),
        backend_kind: "cpu".into(),
        device: String::new(),
        report_path: None,
        trace_path: None,
        metrics: false,
        min_maf: 0.0,
    };
    let mut i = 0;
    fn value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
        let v = args.get(*i).cloned().ok_or_else(|| format!("{flag} expects a value"))?;
        *i += 1;
        Ok(v)
    }
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let mut num = |name: &str| -> Result<String, String> { value(args, &mut i, name) };
        match flag.as_str() {
            "-name" => cli.name = num("-name")?,
            "-input" => cli.input = num("-input")?,
            "-format" => cli.format = num("-format")?,
            "-length" => cli.length = num("-length")?.parse().map_err(|_| "bad -length")?,
            "-grid" => cli.params.grid = num("-grid")?.parse().map_err(|_| "bad -grid")?,
            "-minwin" => cli.params.min_win = num("-minwin")?.parse().map_err(|_| "bad -minwin")?,
            "-maxwin" => cli.params.max_win = num("-maxwin")?.parse().map_err(|_| "bad -maxwin")?,
            "-minsnps" => {
                cli.params.min_snps_per_side =
                    num("-minsnps")?.parse().map_err(|_| "bad -minsnps")?
            }
            "-threads" => {
                cli.params.threads = num("-threads")?.parse().map_err(|_| "bad -threads")?
            }
            "-backend" => cli.backend_kind = num("-backend")?,
            "-device" => cli.device = num("-device")?,
            "-report" => cli.report_path = Some(num("-report")?),
            "-trace" => cli.trace_path = Some(num("-trace")?),
            "-metrics" => cli.metrics = true,
            "-maf" => cli.min_maf = num("-maf")?.parse().map_err(|_| "bad -maf")?,
            "-h" | "--help" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if cli.input.is_empty() {
        return Err(format!("-input is required\n{USAGE}"));
    }
    Ok(cli)
}

const USAGE: &str = "usage: omegaplus -name RUN -input FILE [-format ms|fasta|vcf] \
[-length BP] [-grid N] [-minwin BP] [-maxwin BP] [-minsnps N] [-threads N] \
[-backend cpu|gpu|fpga] [-device radeon|k80|zcu102|alveo] [-maf F] [-report PATH] \
[-trace PATH] [-metrics]";

/// Checks that `path` can plausibly be created: its parent directory must
/// exist and be a directory. Catches the common typo'd-directory case up
/// front, before a long scan runs only to lose its output at the end.
fn validate_output_path(flag: &str, path: &str) -> Result<(), String> {
    match std::path::Path::new(path).parent() {
        // No parent (filesystem root) or an empty one (bare file name in
        // the current directory): nothing to check.
        None => Ok(()),
        Some(p) if p.as_os_str().is_empty() || p.is_dir() => Ok(()),
        Some(p) => Err(format!("{flag} {path}: directory {} does not exist", p.display())),
    }
}

fn load_alignment(cli: &Cli) -> Result<Alignment, String> {
    let file = File::open(&cli.input).map_err(|e| format!("cannot open {}: {e}", cli.input))?;
    let reader = BufReader::new(file);
    let alignment = match cli.format.as_str() {
        "ms" => {
            let mut reps = read_ms(reader, MsReadOptions { region_len: cli.length })
                .map_err(|e| e.to_string())?;
            if reps.is_empty() {
                return Err("ms input contains no replicates".into());
            }
            if reps.len() > 1 {
                eprintln!("omegaplus: {} replicates found, scanning the first", reps.len());
            }
            reps.swap_remove(0)
        }
        "fasta" => fasta::read_fasta(reader).map_err(|e| e.to_string())?,
        "vcf" => {
            let out = vcf::read_vcf(reader).map_err(|e| e.to_string())?;
            if out.skipped_records > 0 {
                eprintln!("omegaplus: skipped {} non-biallelic/no-GT records", out.skipped_records);
            }
            out.alignment
        }
        other => return Err(format!("unknown format '{other}'")),
    };
    Ok(SiteFilter { min_maf: cli.min_maf, ..SiteFilter::default() }.apply(&alignment))
}

fn pick_backend(cli: &Cli) -> Result<Backend, String> {
    match cli.backend_kind.as_str() {
        "cpu" => Ok(Backend::Cpu),
        "gpu" => Ok(Backend::Gpu(match cli.device.as_str() {
            "" | "k80" => GpuDevice::tesla_k80(),
            "radeon" => GpuDevice::radeon_hd8750m(),
            other => return Err(format!("unknown GPU device '{other}'")),
        })),
        "fpga" => Ok(Backend::Fpga(match cli.device.as_str() {
            "" | "alveo" => FpgaDevice::alveo_u200(),
            "zcu102" => FpgaDevice::zcu102(),
            other => return Err(format!("unknown FPGA device '{other}'")),
        })),
        other => Err(format!("unknown backend '{other}'")),
    }
}

fn run(cli: &Cli) -> Result<(), String> {
    // Output destinations are validated before any work happens, so a
    // mistyped directory fails in milliseconds, not after the scan.
    if let Some(path) = &cli.report_path {
        validate_output_path("-report", path)?;
    }
    if let Some(path) = &cli.trace_path {
        validate_output_path("-trace", path)?;
        omega_obs::install_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("-trace {path}: {e}"))?;
    }
    let alignment = load_alignment(cli)?;
    eprintln!(
        "omegaplus: {} sites x {} samples over {} bp",
        alignment.n_sites(),
        alignment.n_samples(),
        alignment.region_len()
    );
    let backend = pick_backend(cli)?;
    let detector = SweepDetector::new(cli.params, backend).map_err(|e| e.to_string())?;
    let outcome = detector.detect(&alignment);

    println!("# OmegaPlus-rs report: {}", cli.name);
    println!("# backend: {}", outcome.backend);
    println!(
        "# LD time: {:.6}s  omega time: {:.6}s  other: {:.6}s",
        outcome.ld_seconds, outcome.omega_seconds, outcome.other_seconds
    );
    println!(
        "# omega evaluations: {}  r2 pairs: {}  reused cells: {}",
        outcome.stats.omega_evaluations, outcome.stats.r2_pairs, outcome.stats.cells_reused
    );
    let report = Report::from_results(&outcome.results);
    if let Some(peak) = report.peak() {
        println!(
            "# peak omega {:.4} at position {} (window {}..{})",
            peak.omega, peak.pos_bp, peak.left_bp, peak.right_bp
        );
    }
    match &cli.report_path {
        Some(path) => {
            let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut w = BufWriter::new(f);
            report.write_tsv(&mut w).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            println!("# per-position report written to {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            report.write_tsv(&mut w).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
        }
    }
    let snap = omega_obs::snapshot();
    if cli.metrics {
        eprint!("{}", omega_obs::metrics_table(&snap));
    }
    if let Some(path) = &cli.trace_path {
        omega_obs::emit_metrics_snapshot(&snap);
        omega_obs::uninstall().map_err(|e| format!("-trace {path}: {e}"))?;
        eprintln!("omegaplus: trace written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|cli| run(&cli)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("omegaplus: {msg}");
            ExitCode::FAILURE
        }
    }
}
