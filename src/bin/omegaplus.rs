//! `omegaplus` — command-line selective sweep scanner, mirroring the
//! OmegaPlus tool the paper accelerates.
//!
//! ```text
//! omegaplus -name RUN -input FILE [-format ms|fasta|vcf] [-length BP]
//!           [-grid N] [-minwin BP] [-maxwin BP] [-minsnps N]
//!           [-threads N] [-backend cpu|gpu|fpga|auto] [-device NAME]
//!           [-reps all|first|N] [-overlap on|off] [-report PATH]
//! ```
//!
//! With `-backend gpu|fpga` the scan runs through the simulated
//! accelerator backends and the summary reports the modelled LD/ω time
//! split alongside the (identical) functional results. `-backend auto`
//! prices the workload on every lane with the `omega-accel` cost
//! predictor (CPU rates from the `BENCH_omega.json` calibration record,
//! accelerator rates from the simulator cost models) and runs on the
//! predicted-fastest one. `-reps` selects how many `ms` replicates to
//! scan (default: all, streamed one at a time); `-overlap on` schedules
//! accelerator transfers behind compute.
//!
//! Observability: `-trace PATH` streams span and metrics events to a JSON
//! Lines file (schema in DESIGN.md), `-metrics` prints the metrics
//! registry as a table after the scan.
//!
//! Daemon mode:
//!
//! ```text
//! omegaplus serve [-addr HOST:PORT] [-queue N] [-cache-mb N]
//!                 [-max-body-mb N] [-retry-after SECS]
//!                 [-trace-capacity N] [-trace-all]
//! ```
//!
//! boots the omega-serve HTTP daemon (POST /scan, GET /jobs/<id>,
//! GET /stats, GET /metrics, GET /traces, GET /traces/<id>,
//! GET /healthz) and blocks until killed. See DESIGN.md's "Serving
//! layer" and "Telemetry plane" sections.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use omega_accel::{Backend, BatchDetector, BatchOutcome, DetectionOutcome, OverlapMode};
use omega_core::{Report, ScanParams};
use omega_fpga_sim::FpgaDevice;
use omega_genome::filter::SiteFilter;
use omega_genome::ms::{MsReadOptions, MsReplicates};
use omega_genome::vcf::VcfReadOptions;
use omega_genome::{fasta, vcf, Alignment};
use omega_gpu_sim::GpuDevice;

/// Which `ms` replicates to scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RepSelect {
    /// Every replicate in the file (the default).
    All,
    /// Only the first replicate (the historical behaviour).
    First,
    /// The first `n` replicates.
    Count(usize),
}

struct Cli {
    name: String,
    input: String,
    format: String,
    length: Option<u64>,
    params: ScanParams,
    backend_kind: String,
    device: String,
    reps: RepSelect,
    overlap: OverlapMode,
    report_path: Option<String>,
    trace_path: Option<String>,
    metrics: bool,
    min_maf: f64,
}

/// Parses the argument list; `Ok(None)` means help was requested.
fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        name: "run".into(),
        input: String::new(),
        format: "ms".into(),
        length: None,
        params: ScanParams::default(),
        backend_kind: "cpu".into(),
        device: String::new(),
        reps: RepSelect::All,
        overlap: OverlapMode::Serialized,
        report_path: None,
        trace_path: None,
        metrics: false,
        min_maf: 0.0,
    };
    let mut i = 0;
    fn value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
        let v = args.get(*i).cloned().ok_or_else(|| format!("{flag} expects a value"))?;
        *i += 1;
        Ok(v)
    }
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let mut num = |name: &str| -> Result<String, String> { value(args, &mut i, name) };
        match flag.as_str() {
            "-name" => cli.name = num("-name")?,
            "-input" => cli.input = num("-input")?,
            "-format" => cli.format = num("-format")?,
            "-length" => cli.length = Some(num("-length")?.parse().map_err(|_| "bad -length")?),
            "-grid" => cli.params.grid = num("-grid")?.parse().map_err(|_| "bad -grid")?,
            "-minwin" => cli.params.min_win = num("-minwin")?.parse().map_err(|_| "bad -minwin")?,
            "-maxwin" => cli.params.max_win = num("-maxwin")?.parse().map_err(|_| "bad -maxwin")?,
            "-minsnps" => {
                cli.params.min_snps_per_side =
                    num("-minsnps")?.parse().map_err(|_| "bad -minsnps")?
            }
            "-threads" => {
                cli.params.threads = num("-threads")?.parse().map_err(|_| "bad -threads")?
            }
            "-backend" => cli.backend_kind = num("-backend")?,
            "-device" => cli.device = num("-device")?,
            "-reps" => {
                cli.reps = match num("-reps")?.as_str() {
                    "all" => RepSelect::All,
                    "first" => RepSelect::First,
                    n => match n.parse() {
                        Ok(c) if c >= 1 => RepSelect::Count(c),
                        _ => return Err("bad -reps: expected all, first, or a count >= 1".into()),
                    },
                }
            }
            "-overlap" => {
                cli.overlap = match num("-overlap")?.as_str() {
                    "on" => OverlapMode::DoubleBuffered,
                    "off" => OverlapMode::Serialized,
                    other => return Err(format!("bad -overlap '{other}': expected on or off")),
                }
            }
            "-report" => cli.report_path = Some(num("-report")?),
            "-trace" => cli.trace_path = Some(num("-trace")?),
            "-metrics" => cli.metrics = true,
            "-maf" => cli.min_maf = num("-maf")?.parse().map_err(|_| "bad -maf")?,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if cli.input.is_empty() {
        return Err(format!("-input is required\n{USAGE}"));
    }
    Ok(Some(cli))
}

const USAGE: &str = "usage: omegaplus -name RUN -input FILE [-format ms|fasta|vcf] \
[-length BP] [-grid N] [-minwin BP] [-maxwin BP] [-minsnps N] [-threads N] \
[-backend cpu|gpu|fpga|auto] [-device radeon|k80|zcu102|alveo] [-reps all|first|N] \
[-overlap on|off] [-maf F] [-report PATH] [-trace PATH] [-metrics]";

/// Default region length for `ms` coordinate scaling when `-length` is
/// not given (ms positions are fractions of an unstated region).
const DEFAULT_MS_LENGTH: u64 = 100_000;

/// Checks that `path` can plausibly be created: its parent directory must
/// exist and be a directory. Catches the common typo'd-directory case up
/// front, before a long scan runs only to lose its output at the end.
fn validate_output_path(flag: &str, path: &str) -> Result<(), String> {
    match std::path::Path::new(path).parent() {
        // No parent (filesystem root) or an empty one (bare file name in
        // the current directory): nothing to check.
        None => Ok(()),
        Some(p) if p.as_os_str().is_empty() || p.is_dir() => Ok(()),
        Some(p) => Err(format!("{flag} {path}: directory {} does not exist", p.display())),
    }
}

/// Per-replicate report path: `dir/stem.tsv` becomes `dir/stem.repN.tsv`
/// (1-based), `dir/stem` becomes `dir/stem.repN`.
fn replicate_report_path(path: &str, index: usize) -> String {
    let p = std::path::Path::new(path);
    match p.extension().and_then(|e| e.to_str()) {
        Some(ext) => {
            format!("{}.rep{index}.{ext}", p.with_extension("").display())
        }
        None => format!("{path}.rep{index}"),
    }
}

/// Loads the single alignment of a FASTA/VCF input, honoring `-length`.
fn load_single_alignment(cli: &Cli) -> Result<Alignment, String> {
    let file = File::open(&cli.input).map_err(|e| format!("cannot open {}: {e}", cli.input))?;
    let reader = BufReader::new(file);
    let alignment = match cli.format.as_str() {
        "fasta" => {
            let a = fasta::read_fasta(reader).map_err(|e| e.to_string())?;
            match cli.length {
                Some(len) => a.with_region_len(len).map_err(|e| e.to_string())?,
                None => a,
            }
        }
        "vcf" => {
            let out = vcf::read_vcf_with(reader, VcfReadOptions { region_len: cli.length })
                .map_err(|e| e.to_string())?;
            if out.skipped_records > 0 {
                eprintln!("omegaplus: skipped {} non-biallelic/no-GT records", out.skipped_records);
            }
            if out.unsorted_records > 0 {
                eprintln!(
                    "omegaplus: {} records arrived out of POS order (sorted)",
                    out.unsorted_records
                );
            }
            if out.duplicate_records > 0 {
                eprintln!("omegaplus: dropped {} duplicate-POS records", out.duplicate_records);
            }
            out.alignment
        }
        other => return Err(format!("unknown format '{other}'")),
    };
    Ok(SiteFilter { min_maf: cli.min_maf, ..SiteFilter::default() }.apply(&alignment))
}

/// Streams the selected `ms` replicates through the batch driver. Only
/// one replicate is resident at a time, so peak memory is independent of
/// the replicate count.
fn run_ms_batch(cli: &Cli, batch: &BatchDetector) -> Result<BatchOutcome, String> {
    let file = File::open(&cli.input).map_err(|e| format!("cannot open {}: {e}", cli.input))?;
    let reader = BufReader::new(file);
    let opts = MsReadOptions { region_len: cli.length.unwrap_or(DEFAULT_MS_LENGTH) };
    let filter = SiteFilter { min_maf: cli.min_maf, ..SiteFilter::default() };
    let replicates = MsReplicates::new(reader, opts);
    let selected: Box<dyn Iterator<Item = _>> = match cli.reps {
        RepSelect::All => Box::new(replicates),
        RepSelect::First => Box::new(replicates.take(1)),
        RepSelect::Count(n) => Box::new(replicates.take(n)),
    };
    let mut index = 0usize;
    let stream = selected.map(move |r| {
        r.map(|a| {
            index += 1;
            let a = filter.apply(&a);
            eprintln!(
                "omegaplus: replicate {index}: {} sites x {} samples over {} bp",
                a.n_sites(),
                a.n_samples(),
                a.region_len()
            );
            a
        })
        .map_err(|e| e.to_string())
    });
    let outcome = batch.run(stream)?;
    if outcome.n_replicates() == 0 {
        return Err("ms input contains no replicates".into());
    }
    if let RepSelect::Count(n) = cli.reps {
        if outcome.n_replicates() < n {
            eprintln!(
                "omegaplus: only {} replicates available (requested {n})",
                outcome.n_replicates()
            );
        }
    }
    Ok(outcome)
}

/// Prints the single-replicate report block (the historical output
/// format) and writes the TSV to `-report` or stdout.
fn print_single(cli: &Cli, outcome: &DetectionOutcome) -> Result<(), String> {
    println!("# OmegaPlus-rs report: {}", cli.name);
    println!("# backend: {}", outcome.backend);
    println!(
        "# LD time: {:.6}s  omega time: {:.6}s  other: {:.6}s",
        outcome.ld_seconds, outcome.omega_seconds, outcome.other_seconds
    );
    if cli.overlap == OverlapMode::DoubleBuffered {
        println!("# hidden by overlap: {:.6}s", outcome.overlap_hidden_seconds);
    }
    println!(
        "# omega evaluations: {}  r2 pairs: {}  reused cells: {}",
        outcome.stats.omega_evaluations, outcome.stats.r2_pairs, outcome.stats.cells_reused
    );
    let report = Report::from_results(&outcome.results);
    if let Some(peak) = report.peak() {
        println!(
            "# peak omega {:.4} at position {} (window {}..{})",
            peak.omega, peak.pos_bp, peak.left_bp, peak.right_bp
        );
    }
    match &cli.report_path {
        Some(path) => {
            write_report(&report, path)?;
            println!("# per-position report written to {path}");
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            report.write_tsv(&mut w).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Prints the multi-replicate aggregate block: per-replicate peaks (and
/// TSVs under `-report` with `.repN` names) plus batch totals.
fn print_batch(cli: &Cli, outcome: &BatchOutcome) -> Result<(), String> {
    println!("# OmegaPlus-rs batch report: {}", cli.name);
    println!("# backend: {}", outcome.backend);
    println!("# replicates: {}", outcome.n_replicates());
    for (i, rep) in outcome.replicates.iter().enumerate() {
        let index = i + 1;
        let report = Report::from_results(&rep.results);
        match report.peak() {
            Some(peak) => println!(
                "# replicate {index}: peak omega {:.4} at position {} (window {}..{})",
                peak.omega, peak.pos_bp, peak.left_bp, peak.right_bp
            ),
            None => println!("# replicate {index}: no scorable position"),
        }
        if let Some(path) = &cli.report_path {
            let rep_path = replicate_report_path(path, index);
            write_report(&report, &rep_path)?;
            println!("# replicate {index} report written to {rep_path}");
        }
    }
    println!(
        "# total LD time: {:.6}s  omega time: {:.6}s  other: {:.6}s",
        outcome.ld_seconds, outcome.omega_seconds, outcome.other_seconds
    );
    if cli.overlap == OverlapMode::DoubleBuffered {
        println!("# hidden by overlap: {:.6}s", outcome.overlap_hidden_seconds);
    }
    println!(
        "# omega evaluations: {}  r2 pairs: {}  reused cells: {}",
        outcome.stats.omega_evaluations, outcome.stats.r2_pairs, outcome.stats.cells_reused
    );
    Ok(())
}

fn write_report(report: &Report, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(f);
    report.write_tsv(&mut w).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())
}

fn pick_backend(cli: &Cli) -> Result<Backend, String> {
    match cli.backend_kind.as_str() {
        "cpu" => Ok(Backend::Cpu),
        "gpu" => Ok(Backend::Gpu(match cli.device.as_str() {
            "" | "k80" => GpuDevice::tesla_k80(),
            "radeon" => GpuDevice::radeon_hd8750m(),
            other => return Err(format!("unknown GPU device '{other}'")),
        })),
        "fpga" => Ok(Backend::Fpga(match cli.device.as_str() {
            "" | "alveo" => FpgaDevice::alveo_u200(),
            "zcu102" => FpgaDevice::zcu102(),
            other => return Err(format!("unknown FPGA device '{other}'")),
        })),
        other => Err(format!("unknown backend '{other}'")),
    }
}

/// Resolves `-backend auto` by pricing the workload on every lane and
/// reporting the decision. For `ms` inputs the first replicate is the
/// shape proxy for the whole file (replicates from one simulation share
/// their workload shape to first order).
fn resolve_auto_backend(cli: &Cli) -> Result<Backend, String> {
    if !cli.device.is_empty() {
        return Err("-backend auto cannot be combined with -device (auto picks the lane)".into());
    }
    let alignment = if cli.format == "ms" {
        let file = File::open(&cli.input).map_err(|e| format!("cannot open {}: {e}", cli.input))?;
        let opts = MsReadOptions { region_len: cli.length.unwrap_or(DEFAULT_MS_LENGTH) };
        let filter = SiteFilter { min_maf: cli.min_maf, ..SiteFilter::default() };
        let mut replicates = MsReplicates::new(BufReader::new(file), opts);
        match replicates.next() {
            Some(Ok(a)) => filter.apply(&a),
            Some(Err(e)) => return Err(e.to_string()),
            None => return Err("ms input contains no replicates".into()),
        }
    } else {
        load_single_alignment(cli)?
    };
    let prediction = omega_accel::CostPredictor::global().predict(&alignment, &cli.params);
    let lane = prediction.fastest();
    eprintln!(
        "omegaplus: backend auto: predicted cpu {:.6}s  gpu {:.6}s  fpga {:.6}s -> {}",
        prediction.cpu_seconds,
        prediction.gpu_seconds,
        prediction.fpga_seconds,
        lane.as_str()
    );
    Ok(lane.backend())
}

fn run(cli: &Cli) -> Result<(), String> {
    // Output destinations are validated before any work happens, so a
    // mistyped directory fails in milliseconds, not after the scan.
    if let Some(path) = &cli.report_path {
        validate_output_path("-report", path)?;
    }
    if let Some(path) = &cli.trace_path {
        validate_output_path("-trace", path)?;
        omega_obs::install_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("-trace {path}: {e}"))?;
    }
    let backend =
        if cli.backend_kind == "auto" { resolve_auto_backend(cli)? } else { pick_backend(cli)? };
    let detector = omega_accel::SweepDetector::new(cli.params, backend)
        .map_err(|e| e.to_string())?
        .with_overlap(cli.overlap);

    if cli.format == "ms" {
        let batch = BatchDetector::from_detector(detector);
        let outcome = run_ms_batch(cli, &batch)?;
        if outcome.n_replicates() == 1 {
            print_single(cli, &outcome.replicates[0])?;
        } else {
            print_batch(cli, &outcome)?;
        }
    } else {
        let alignment = load_single_alignment(cli)?;
        eprintln!(
            "omegaplus: {} sites x {} samples over {} bp",
            alignment.n_sites(),
            alignment.n_samples(),
            alignment.region_len()
        );
        let outcome = detector.detect(&alignment);
        print_single(cli, &outcome)?;
    }

    let snap = omega_obs::snapshot();
    if cli.metrics {
        eprint!("{}", omega_obs::metrics_table(&snap));
    }
    if let Some(path) = &cli.trace_path {
        omega_obs::emit_metrics_snapshot(&snap);
        omega_obs::uninstall().map_err(|e| format!("-trace {path}: {e}"))?;
        eprintln!("omegaplus: trace written to {path}");
    }
    Ok(())
}

const SERVE_USAGE: &str = "usage: omegaplus serve [-addr HOST:PORT] [-queue N] \
[-cache-mb N] [-max-body-mb N] [-retry-after SECS] [-trace-capacity N] [-trace-all] \
[-data-dir PATH] [-no-persist] [-retain-jobs N] [-retain-secs SECS] [-worker-id NAME]";

const COORDINATE_USAGE: &str = "usage: omegaplus coordinate -workers HOST:PORT,HOST:PORT,... \
[-addr HOST:PORT] [-max-body-mb N] [-shards N] [-shard-timeout-ms MS] [-health-ms MS] \
[-io-timeout-ms MS]";

/// Parses `omegaplus coordinate` flags into a coordinator configuration.
fn parse_coordinate_args(args: &[String]) -> Result<Option<omega_cluster::ClusterConfig>, String> {
    let mut config = omega_cluster::ClusterConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let mut num = |name: &str| -> Result<String, String> {
            let v = args.get(i).cloned().ok_or_else(|| format!("{name} expects a value"))?;
            i += 1;
            Ok(v)
        };
        match flag.as_str() {
            "-addr" => config.addr = num("-addr")?,
            "-workers" => {
                config.workers = num("-workers")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "-max-body-mb" => {
                let mb: usize = num("-max-body-mb")?.parse().map_err(|_| "bad -max-body-mb")?;
                config.max_body_bytes = mb << 20;
            }
            "-shards" => {
                config.shards_per_scan = num("-shards")?.parse().map_err(|_| "bad -shards")?
            }
            "-shard-timeout-ms" => {
                config.shard_timeout_ms =
                    num("-shard-timeout-ms")?.parse().map_err(|_| "bad -shard-timeout-ms")?
            }
            "-health-ms" => {
                config.health_interval_ms =
                    num("-health-ms")?.parse().map_err(|_| "bad -health-ms")?
            }
            "-io-timeout-ms" => {
                config.io_timeout_ms =
                    num("-io-timeout-ms")?.parse().map_err(|_| "bad -io-timeout-ms")?
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown flag '{other}'\n{COORDINATE_USAGE}")),
        }
    }
    if config.workers.is_empty() {
        return Err(format!("-workers is required\n{COORDINATE_USAGE}"));
    }
    Ok(Some(config))
}

fn run_coordinate(args: &[String]) -> ExitCode {
    match parse_coordinate_args(args) {
        Ok(None) => {
            println!("{COORDINATE_USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(config)) => match omega_cluster::start(config) {
            Ok(handle) => {
                eprintln!("omegaplus coordinate: listening on http://{}", handle.addr());
                handle.wait();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("omegaplus coordinate: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("omegaplus coordinate: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `omegaplus serve` flags into a daemon configuration.
fn parse_serve_args(args: &[String]) -> Result<Option<omega_serve::ServeConfig>, String> {
    let mut config = omega_serve::ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let mut num = |name: &str| -> Result<String, String> {
            let v = args.get(i).cloned().ok_or_else(|| format!("{name} expects a value"))?;
            i += 1;
            Ok(v)
        };
        match flag.as_str() {
            "-addr" => config.addr = num("-addr")?,
            "-queue" => config.queue_capacity = num("-queue")?.parse().map_err(|_| "bad -queue")?,
            "-cache-mb" => {
                let mb: usize = num("-cache-mb")?.parse().map_err(|_| "bad -cache-mb")?;
                config.cache_capacity_bytes = mb << 20;
            }
            "-max-body-mb" => {
                let mb: usize = num("-max-body-mb")?.parse().map_err(|_| "bad -max-body-mb")?;
                config.max_body_bytes = mb << 20;
            }
            "-retry-after" => {
                config.retry_after_secs =
                    num("-retry-after")?.parse().map_err(|_| "bad -retry-after")?
            }
            "-trace-capacity" => {
                config.trace_capacity =
                    num("-trace-capacity")?.parse().map_err(|_| "bad -trace-capacity")?
            }
            "-trace-all" => config.trace_all = true,
            "-data-dir" => config.data_dir = Some(num("-data-dir")?.into()),
            "-no-persist" => config.data_dir = None,
            "-retain-jobs" => {
                config.retain_jobs = num("-retain-jobs")?.parse().map_err(|_| "bad -retain-jobs")?
            }
            "-retain-secs" => {
                config.retain_job_secs =
                    num("-retain-secs")?.parse().map_err(|_| "bad -retain-secs")?
            }
            "-worker-id" => config.worker_id = num("-worker-id")?,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown flag '{other}'\n{SERVE_USAGE}")),
        }
    }
    if config.queue_capacity == 0 {
        return Err("-queue must be >= 1".into());
    }
    Ok(Some(config))
}

fn run_serve(args: &[String]) -> ExitCode {
    match parse_serve_args(args) {
        Ok(None) => {
            println!("{SERVE_USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(config)) => match omega_serve::start(config) {
            Ok(handle) => {
                eprintln!("omegaplus serve: listening on http://{}", handle.addr());
                handle.wait();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("omegaplus serve: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("omegaplus serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("coordinate") {
        return run_coordinate(&args[1..]);
    }
    match parse_args(&args) {
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(cli)) => match run(&cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("omegaplus: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("omegaplus: {msg}");
            ExitCode::FAILURE
        }
    }
}
