//! `omegaplus-rs` — LD-based selective sweep detection with simulated
//! GPU and FPGA accelerators.
//!
//! A from-scratch Rust reproduction of *"Accelerated LD-based selective
//! sweep detection using GPUs and FPGAs"* (Corts, Sterenborg &
//! Alachiotis, IPDPSW 2022): the OmegaPlus ω-statistic engine, the
//! linkage-disequilibrium kernels it builds on, a Hudson's-`ms`-style
//! coalescent simulator for datasets, and cycle/throughput-model
//! simulators of the paper's GPU and FPGA accelerators.
//!
//! This façade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`genome`] | `omega-genome` | bit-packed alignments, ms/FASTA/VCF parsing |
//! | [`ld`] | `omega-ld` | r², popcount GEMM LD kernels |
//! | [`core`] | `omega-core` | ω statistic, matrix M, grid scan |
//! | [`mssim`] | `omega-mssim` | coalescent + sweep simulator |
//! | [`gpu`] | `omega-gpu-sim` | GPU device model, Kernel I/II |
//! | [`fpga`] | `omega-fpga-sim` | FPGA pipeline model |
//! | [`accel`] | `omega-accel` | complete accelerated detection |
//! | [`baselines`] | `omega-baselines` | iHS and Tajima's D comparison methods |
//!
//! # Quick start
//!
//! ```
//! use omegaplus_rs::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Simulate a dataset carrying a selective sweep at its midpoint.
//! let neutral = NeutralParams { n_samples: 24, theta: 40.0, rho: 0.0, region_len_bp: 100_000 };
//! let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
//! let mut rng = StdRng::seed_from_u64(7);
//! let alignment = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
//!
//! // Scan it with the ω statistic.
//! let scanner = OmegaScanner::new(ScanParams {
//!     grid: 20,
//!     min_win: 500,
//!     max_win: 30_000,
//!     ..ScanParams::default()
//! }).unwrap();
//! let outcome = scanner.scan(&alignment);
//! assert_eq!(outcome.results.len(), 20);
//! ```

pub use omega_accel as accel;
pub use omega_baselines as baselines;
pub use omega_core as core;
pub use omega_fpga_sim as fpga;
pub use omega_genome as genome;
pub use omega_gpu_sim as gpu;
pub use omega_ld as ld;
pub use omega_mssim as mssim;

/// The most common imports in one place.
pub mod prelude {
    pub use omega_accel::{
        Backend, BatchDetector, BatchOutcome, DetectionOutcome, OverlapMode, SweepDetector,
        WorkloadClass,
    };
    pub use omega_core::{OmegaScanner, Report, ScanOutcome, ScanParams, SweepCall};
    pub use omega_fpga_sim::{FpgaDevice, FpgaOmegaEngine};
    pub use omega_genome::{Alignment, SnpVec};
    pub use omega_gpu_sim::{GpuDevice, GpuOmegaEngine};
    pub use omega_mssim::{
        simulate_fixed_sites, simulate_neutral, simulate_sweep, NeutralParams, SweepParams,
    };
}
