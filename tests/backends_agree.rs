//! Cross-backend functional equivalence: the CPU engine, the simulated
//! GPU kernels, and the simulated FPGA pipelines must produce identical
//! sweep-detection results — the property the paper's accelerators are
//! designed to preserve ("the exact computations required by OmegaPlus").

use omegaplus_rs::core::{BorderSet, GridPlan, MatrixBuildTiming, OmegaTask, RegionMatrix};
use omegaplus_rs::fpga::FpgaOmegaEngine;
use omegaplus_rs::gpu::{GpuOmegaEngine, KernelKind};
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn sweep_alignment(seed: u64) -> Alignment {
    let neutral = NeutralParams { n_samples: 32, theta: 50.0, rho: 25.0, region_len_bp: 100_000 };
    let sweep = SweepParams { position: 0.5, alpha: 12.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(seed);
    simulate_sweep(&neutral, &sweep, &mut rng).unwrap()
}

fn params() -> ScanParams {
    ScanParams { grid: 15, min_win: 1_000, max_win: 30_000, ..ScanParams::default() }
}

/// Extracts every scorable position's task for accelerator-level checks.
fn tasks_for(a: &Alignment, p: &ScanParams) -> Vec<OmegaTask> {
    let plan = GridPlan::build(a, p);
    let mut matrix = RegionMatrix::new();
    let mut timing = MatrixBuildTiming::default();
    let mut tasks = Vec::new();
    for pp in plan.positions() {
        if let Some(b) = BorderSet::build(a, pp, p) {
            if b.n_combinations() > 0 {
                matrix.advance(a, pp.lo, pp.hi, &mut timing);
                tasks.push(OmegaTask::extract(&matrix, &b, pp));
            }
        }
    }
    tasks
}

#[test]
fn gpu_kernels_match_cpu_on_sweep_data() {
    let a = sweep_alignment(1);
    let tasks = tasks_for(&a, &params());
    assert!(!tasks.is_empty());
    let engine = GpuOmegaEngine::new(GpuDevice::tesla_k80());
    for task in &tasks {
        let reference = task.max_reference().unwrap();
        for kind in [KernelKind::One, KernelKind::Two] {
            let run = engine.run_task_with(task, kind);
            let got = run.best.unwrap();
            assert_eq!(got.omega, reference.omega);
            assert_eq!(got.left_border, reference.left_border);
            assert_eq!(got.right_border, reference.right_border);
            assert_eq!(got.evaluated, reference.evaluated);
        }
    }
}

#[test]
fn fpga_pipelines_match_cpu_on_sweep_data() {
    let a = sweep_alignment(2);
    let tasks = tasks_for(&a, &params());
    for device in FpgaDevice::paper_targets() {
        let engine = FpgaOmegaEngine::new(device);
        for task in &tasks {
            let reference = task.max_reference().unwrap();
            let run = engine.run_task(task);
            let got = run.best.unwrap();
            assert_eq!(got.omega, reference.omega);
            assert_eq!(got.left_border, reference.left_border);
            assert_eq!(got.right_border, reference.right_border);
            assert_eq!(run.hw_scores + run.sw_scores, task.n_combinations());
        }
    }
}

#[test]
fn complete_detection_identical_across_backends() {
    let a = sweep_alignment(3);
    let backends = [
        Backend::Cpu,
        Backend::Gpu(GpuDevice::radeon_hd8750m()),
        Backend::Gpu(GpuDevice::tesla_k80()),
        Backend::Fpga(FpgaDevice::zcu102()),
        Backend::Fpga(FpgaDevice::alveo_u200()),
    ];
    let outcomes: Vec<DetectionOutcome> = backends
        .iter()
        .map(|b| SweepDetector::new(params(), b.clone()).unwrap().detect(&a))
        .collect();
    let reference = &outcomes[0];
    for o in &outcomes[1..] {
        assert_eq!(o.results.len(), reference.results.len());
        for (x, y) in o.results.iter().zip(&reference.results) {
            assert_eq!(x.pos_bp, y.pos_bp, "{}", o.backend);
            assert_eq!(x.omega, y.omega, "{}", o.backend);
            assert_eq!(x.left_bp, y.left_bp, "{}", o.backend);
            assert_eq!(x.right_bp, y.right_bp, "{}", o.backend);
        }
    }
}

#[test]
fn accelerators_beat_cpu_on_omega_time_for_dense_data() {
    // The headline claim, at reproduction scale: modelled accelerator ω
    // time beats measured single-core CPU ω time on an ω-heavy workload.
    let neutral = NeutralParams { n_samples: 24, theta: 1.0, rho: 0.0, region_len_bp: 400_000 };
    let mut rng = StdRng::seed_from_u64(9);
    let a = simulate_fixed_sites(&neutral, 600, &mut rng).unwrap();
    let p = ScanParams { grid: 40, min_win: 1_000, max_win: 100_000, ..ScanParams::default() };

    let cpu = SweepDetector::new(p, Backend::Cpu).unwrap().detect(&a);
    let fpga = SweepDetector::new(p, Backend::Fpga(FpgaDevice::alveo_u200())).unwrap().detect(&a);
    let gpu = SweepDetector::new(p, Backend::Gpu(GpuDevice::tesla_k80())).unwrap().detect(&a);

    assert!(
        fpga.omega_seconds < cpu.omega_seconds,
        "FPGA omega {} should beat CPU {}",
        fpga.omega_seconds,
        cpu.omega_seconds
    );
    // The FPGA ω engine outperforms the GPU's complete ω path (which pays
    // per-position transfers), as in Fig. 14.
    assert!(fpga.omega_seconds < gpu.omega_seconds);
}
