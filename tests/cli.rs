//! Black-box tests of the `omegaplus` command-line binary.

use std::io::Write;
use std::process::Command;

use omegaplus_rs::genome::ms::write_ms;
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn write_dataset(path: &std::path::Path) {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 15.0, region_len_bp: 80_000 };
    let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(5);
    let a = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
    let mut f = std::fs::File::create(path).unwrap();
    let mut buf = Vec::new();
    write_ms(&mut buf, &[a]).unwrap();
    f.write_all(&buf).unwrap();
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_omegaplus"))
}

#[test]
fn scans_ms_input_and_prints_report() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test1");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);

    let out = bin()
        .args([
            "-name",
            "t1",
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "10",
            "-minwin",
            "500",
            "-maxwin",
            "30000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("# OmegaPlus-rs report: t1"));
    assert!(stdout.contains("# backend: CPU"));
    assert!(stdout.contains("peak omega"));
    let data_lines = stdout.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(data_lines, 10);
}

#[test]
fn gpu_and_fpga_backends_run_and_agree() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);

    let run = |backend: &str, device: &str| -> String {
        let out = bin()
            .args([
                "-input",
                input.to_str().unwrap(),
                "-length",
                "80000",
                "-grid",
                "8",
                "-minwin",
                "500",
                "-maxwin",
                "30000",
                "-backend",
                backend,
                "-device",
                device,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let cpu = run("cpu", "");
    let gpu = run("gpu", "k80");
    let fpga = run("fpga", "zcu102");
    let peak_line = |s: &str| s.lines().find(|l| l.contains("peak omega")).unwrap().to_string();
    assert_eq!(peak_line(&cpu), peak_line(&gpu));
    assert_eq!(peak_line(&cpu), peak_line(&fpga));
    assert!(gpu.contains("backend: GPU (NVIDIA Tesla K80)"));
    assert!(fpga.contains("backend: FPGA (ZCU102)"));
}

#[test]
fn report_file_written() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test3");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    let report = dir.join("report.tsv");
    write_dataset(&input);
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "6",
            "-report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.starts_with("# position"));
    assert_eq!(text.lines().count(), 7);
}

#[test]
fn missing_input_fails_cleanly() {
    let out = bin().args(["-grid", "5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-input is required"));
}

#[test]
fn unknown_flag_reports_usage() {
    let out = bin().args(["-bogus", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn report_to_missing_directory_fails_clearly() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test4");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);
    let bogus = dir.join("no_such_dir").join("report.tsv");
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "5",
            "-report",
            bogus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "stderr: {stderr}");
    // The scan must not have started: the path check runs before loading.
    assert!(!stderr.contains("sites x"), "stderr: {stderr}");
}

#[test]
fn trace_to_missing_directory_fails_clearly() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test5");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);
    let bogus = dir.join("no_such_dir").join("trace.jsonl");
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "5",
            "-trace",
            bogus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "stderr: {stderr}");
}
