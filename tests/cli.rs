//! Black-box tests of the `omegaplus` command-line binary.

use std::io::Write;
use std::process::Command;

use omegaplus_rs::genome::ms::write_ms;
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn write_dataset(path: &std::path::Path) {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 15.0, region_len_bp: 80_000 };
    let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(5);
    let a = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
    let mut f = std::fs::File::create(path).unwrap();
    let mut buf = Vec::new();
    write_ms(&mut buf, &[a]).unwrap();
    f.write_all(&buf).unwrap();
}

fn write_replicates(path: &std::path::Path, seeds: &[u64]) {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 15.0, region_len_bp: 80_000 };
    let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
    let reps: Vec<_> = seeds
        .iter()
        .map(|&s| {
            let mut rng = StdRng::seed_from_u64(s);
            simulate_sweep(&neutral, &sweep, &mut rng).unwrap()
        })
        .collect();
    let mut buf = Vec::new();
    write_ms(&mut buf, &reps).unwrap();
    std::fs::write(path, buf).unwrap();
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_omegaplus"))
}

#[test]
fn scans_ms_input_and_prints_report() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test1");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);

    let out = bin()
        .args([
            "-name",
            "t1",
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "10",
            "-minwin",
            "500",
            "-maxwin",
            "30000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("# OmegaPlus-rs report: t1"));
    assert!(stdout.contains("# backend: CPU"));
    assert!(stdout.contains("peak omega"));
    let data_lines = stdout.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(data_lines, 10);
}

#[test]
fn gpu_and_fpga_backends_run_and_agree() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);

    let run = |backend: &str, device: &str| -> String {
        let out = bin()
            .args([
                "-input",
                input.to_str().unwrap(),
                "-length",
                "80000",
                "-grid",
                "8",
                "-minwin",
                "500",
                "-maxwin",
                "30000",
                "-backend",
                backend,
                "-device",
                device,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let cpu = run("cpu", "");
    let gpu = run("gpu", "k80");
    let fpga = run("fpga", "zcu102");
    let peak_line = |s: &str| s.lines().find(|l| l.contains("peak omega")).unwrap().to_string();
    assert_eq!(peak_line(&cpu), peak_line(&gpu));
    assert_eq!(peak_line(&cpu), peak_line(&fpga));
    assert!(gpu.contains("backend: GPU (NVIDIA Tesla K80)"));
    assert!(fpga.contains("backend: FPGA (ZCU102)"));
}

#[test]
fn report_file_written() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test3");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    let report = dir.join("report.tsv");
    write_dataset(&input);
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "6",
            "-report",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.starts_with("# position"));
    assert_eq!(text.lines().count(), 7);
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    for flag in ["-h", "--help"] {
        let out = bin().args([flag]).output().unwrap();
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{flag} stdout: {stdout}");
        assert!(out.stderr.is_empty(), "{flag} must not write to stderr");
    }
}

#[test]
fn batch_replicates_match_independent_runs() {
    let dir = std::env::temp_dir().join("omegaplus_cli_batch1");
    std::fs::create_dir_all(&dir).unwrap();
    let seeds = [101u64, 102, 103];
    let multi = dir.join("multi.ms");
    write_replicates(&multi, &seeds);

    for backend in ["cpu", "gpu"] {
        let common = ["-length", "80000", "-grid", "8", "-minwin", "500", "-maxwin", "30000"];
        let batch_report = dir.join(format!("{backend}_batch.tsv"));
        let out = bin()
            .args(["-input", multi.to_str().unwrap(), "-backend", backend])
            .args(common)
            .args(["-report", batch_report.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("# replicates: 3"), "stdout: {stdout}");

        for (i, &seed) in seeds.iter().enumerate() {
            let single_input = dir.join(format!("{backend}_single{i}.ms"));
            write_replicates(&single_input, &[seed]);
            let single_report = dir.join(format!("{backend}_single{i}.tsv"));
            let out = bin()
                .args(["-input", single_input.to_str().unwrap(), "-backend", backend])
                .args(common)
                .args(["-report", single_report.to_str().unwrap()])
                .output()
                .unwrap();
            assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

            let rep_path = dir.join(format!("{backend}_batch.rep{}.tsv", i + 1));
            let batch_tsv = std::fs::read(&rep_path).unwrap();
            let single_tsv = std::fs::read(&single_report).unwrap();
            assert_eq!(
                batch_tsv,
                single_tsv,
                "{backend} replicate {} TSV differs from independent run",
                i + 1
            );
        }
    }
}

#[test]
fn reps_first_scans_one_replicate_in_legacy_format() {
    let dir = std::env::temp_dir().join("omegaplus_cli_batch2");
    std::fs::create_dir_all(&dir).unwrap();
    let multi = dir.join("multi.ms");
    write_replicates(&multi, &[201, 202, 203]);
    let out = bin()
        .args(["-input", multi.to_str().unwrap(), "-reps", "first", "-length", "80000"])
        .args(["-grid", "6", "-minwin", "500", "-maxwin", "30000"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("# OmegaPlus-rs report:"), "stdout: {stdout}");
    assert!(!stdout.contains("# replicates:"), "stdout: {stdout}");
}

#[test]
fn minsnps_beyond_site_count_yields_clean_run() {
    let dir = std::env::temp_dir().join("omegaplus_cli_minsnps");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);
    let out = bin()
        .args(["-input", input.to_str().unwrap(), "-length", "80000", "-grid", "5"])
        .args(["-minsnps", "1000000"])
        .output()
        .unwrap();
    // Every grid position is unscorable; the scan must finish cleanly
    // instead of panicking on border-set underflow.
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let data_lines = stdout.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(data_lines, 5);
}

#[test]
fn vcf_length_flag_sets_region_and_rejects_overflow() {
    let dir = std::env::temp_dir().join("omegaplus_cli_vcflen");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.vcf");
    let vcf = "\
#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\ts1\ts2
chr1\t100\t.\tA\tG\t.\tPASS\t.\tGT\t0|1\t1|1
chr1\t200\t.\tC\tT\t.\tPASS\t.\tGT\t0|0\t0|1
chr1\t300\t.\tG\tA\t.\tPASS\t.\tGT\t1|0\t0|1
";
    std::fs::write(&input, vcf).unwrap();

    let out = bin()
        .args(["-input", input.to_str().unwrap(), "-format", "vcf", "-length", "50000"])
        .args(["-grid", "3", "-minsnps", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("over 50000 bp"), "stderr: {stderr}");

    let out = bin()
        .args(["-input", input.to_str().unwrap(), "-format", "vcf", "-length", "150"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exceeds"), "stderr: {stderr}");
}

#[test]
fn missing_input_fails_cleanly() {
    let out = bin().args(["-grid", "5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-input is required"));
}

#[test]
fn unknown_flag_reports_usage() {
    let out = bin().args(["-bogus", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn report_to_missing_directory_fails_clearly() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test4");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);
    let bogus = dir.join("no_such_dir").join("report.tsv");
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "5",
            "-report",
            bogus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "stderr: {stderr}");
    // The scan must not have started: the path check runs before loading.
    assert!(!stderr.contains("sites x"), "stderr: {stderr}");
}

#[test]
fn trace_to_missing_directory_fails_clearly() {
    let dir = std::env::temp_dir().join("omegaplus_cli_test5");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    write_dataset(&input);
    let bogus = dir.join("no_such_dir").join("trace.jsonl");
    let out = bin()
        .args([
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "5",
            "-trace",
            bogus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "stderr: {stderr}");
}
