//! End-to-end integration: simulator → engine → report.

use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn scan_params() -> ScanParams {
    ScanParams { grid: 25, min_win: 1_000, max_win: 40_000, ..ScanParams::default() }
}

#[test]
fn sweep_replicates_score_higher_than_neutral() {
    let neutral = NeutralParams { n_samples: 30, theta: 40.0, rho: 30.0, region_len_bp: 120_000 };
    // alpha 8 gives a mean hitchhiking reach of region/8 = 15 kb per side,
    // a footprint the 1-40 kb scan windows resolve well.
    let sweep = SweepParams { position: 0.5, alpha: 8.0, swept_fraction: 1.0 };
    let scanner = OmegaScanner::new(scan_params()).unwrap();

    let mut neutral_ratios = Vec::new();
    let mut sweep_ratios = Vec::new();
    let reps = 16;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let n = simulate_neutral(&neutral, &mut rng).unwrap();
        let s = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
        let ratio = |a: &omegaplus_rs::genome::Alignment| {
            let out = scanner.scan(a);
            let report = Report::new(&out);
            match report.peak() {
                Some(p) if report.mean_omega() > 0.0 => p.omega as f64 / report.mean_omega(),
                _ => 0.0,
            }
        };
        neutral_ratios.push(ratio(&n));
        sweep_ratios.push(ratio(&s));
    }
    // Peak-to-mean ratios are heavy-tailed under neutrality (near-zero
    // cross-region sums inflate individual omega values), so compare
    // medians, which a single inflated neutral replicate cannot move.
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        0.5 * (v[v.len() / 2] + v[(v.len() - 1) / 2])
    };
    let neutral_med = median(&mut neutral_ratios);
    let sweep_med = median(&mut sweep_ratios);
    assert!(
        sweep_med > 1.2 * neutral_med,
        "sweep median outlier ratio {sweep_med} must clearly exceed neutral {neutral_med}"
    );
}

#[test]
fn sweep_peak_localizes_near_planted_site() {
    let neutral = NeutralParams { n_samples: 40, theta: 60.0, rho: 40.0, region_len_bp: 150_000 };
    let sweep = SweepParams { position: 0.5, alpha: 12.0, swept_fraction: 1.0 };
    let scanner = OmegaScanner::new(scan_params()).unwrap();
    let mut hits = 0;
    let reps = 10;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let a = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
        let out = scanner.scan(&a);
        let report = Report::new(&out);
        if let Some(p) = report.peak() {
            let true_site = a.region_len() / 2;
            if p.pos_bp.abs_diff(true_site) < a.region_len() / 5 {
                hits += 1;
            }
        }
    }
    assert!(hits >= reps / 2, "localized {hits}/{reps} sweeps; expected at least half");
}

#[test]
fn parallel_scan_equals_sequential_end_to_end() {
    let neutral = NeutralParams { n_samples: 24, theta: 50.0, rho: 20.0, region_len_bp: 100_000 };
    let mut rng = StdRng::seed_from_u64(4242);
    let a = simulate_neutral(&neutral, &mut rng).unwrap();

    let seq = OmegaScanner::new(scan_params()).unwrap().scan(&a);
    let par =
        OmegaScanner::new(ScanParams { threads: 3, ..scan_params() }).unwrap().scan_parallel(&a);
    assert_eq!(seq.results.len(), par.results.len());
    for (s, p) in seq.results.iter().zip(&par.results) {
        assert_eq!(s.pos_bp, p.pos_bp);
        assert_eq!(s.n_combinations, p.n_combinations);
        assert!((s.omega - p.omega).abs() <= 1e-3 * s.omega.abs().max(1.0));
    }
}

#[test]
fn report_roundtrips_through_tsv() {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 10.0, region_len_bp: 80_000 };
    let mut rng = StdRng::seed_from_u64(777);
    let a = simulate_neutral(&neutral, &mut rng).unwrap();
    let out = OmegaScanner::new(scan_params()).unwrap().scan(&a);
    let report = Report::new(&out);
    let mut buf = Vec::new();
    report.write_tsv(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let data_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(data_lines.len(), out.results.len());
    // Every line parses back into numbers.
    for line in data_lines {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 5);
        fields[0].parse::<u64>().unwrap();
        fields[1].parse::<f64>().unwrap();
    }
}

#[test]
fn batch_detector_matches_independent_detections() {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 15.0, region_len_bp: 80_000 };
    let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
    let reps: Vec<omegaplus_rs::genome::Alignment> = (0..3)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            simulate_sweep(&neutral, &sweep, &mut rng).unwrap()
        })
        .collect();
    let params = ScanParams { grid: 10, min_win: 500, max_win: 30_000, ..ScanParams::default() };

    for backend in [Backend::Cpu, Backend::Gpu(GpuDevice::tesla_k80())] {
        let batch = BatchDetector::new(params, backend.clone()).unwrap();
        let out = batch.run(reps.iter().cloned().map(Ok::<_, std::convert::Infallible>)).unwrap();
        assert_eq!(out.n_replicates(), 3);
        let single = SweepDetector::new(params, backend).unwrap();
        for (rep, a) in out.replicates.iter().zip(&reps) {
            let solo = single.detect(a);
            assert_eq!(rep.results.len(), solo.results.len());
            for (x, y) in rep.results.iter().zip(&solo.results) {
                assert_eq!(x.pos_bp, y.pos_bp);
                assert_eq!(x.omega.to_bits(), y.omega.to_bits());
                assert_eq!(x.left_bp, y.left_bp);
                assert_eq!(x.right_bp, y.right_bp);
                assert_eq!(x.n_combinations, y.n_combinations);
            }
        }
    }
}

#[test]
fn overlapped_batch_never_slower_than_serialized() {
    let neutral = NeutralParams { n_samples: 24, theta: 40.0, rho: 20.0, region_len_bp: 100_000 };
    let mut rng = StdRng::seed_from_u64(555);
    let reps: Vec<omegaplus_rs::genome::Alignment> =
        (0..3).map(|_| simulate_neutral(&neutral, &mut rng).unwrap()).collect();
    let params = ScanParams { grid: 12, min_win: 500, max_win: 30_000, ..ScanParams::default() };

    let run = |overlap: OverlapMode| {
        BatchDetector::new(params, Backend::Gpu(GpuDevice::tesla_k80()))
            .unwrap()
            .with_overlap(overlap)
            .run(reps.iter().cloned().map(Ok::<_, std::convert::Infallible>))
            .unwrap()
    };
    let serialized = run(OverlapMode::Serialized);
    let overlapped = run(OverlapMode::DoubleBuffered);

    // The modelled accelerator time is deterministic: overlap may only
    // shorten it, and toggled off it matches the plain serialized sum.
    let ser_model = serialized.ld_seconds + serialized.omega_seconds;
    let db_model = overlapped.ld_seconds + overlapped.omega_seconds;
    assert_eq!(serialized.overlap_hidden_seconds, 0.0);
    assert!(db_model <= ser_model + 1e-12, "{db_model} > {ser_model}");
    assert!(overlapped.overlap_hidden_seconds > 0.0);
    assert!(
        (db_model + overlapped.overlap_hidden_seconds - ser_model).abs()
            < 1e-9 * ser_model.max(1.0)
    );
}

#[test]
fn fixed_site_datasets_drive_scan_workload() {
    // The paper's GPU evaluation fixes SNP counts; check the scan workload
    // scales with the fixed count.
    let neutral = NeutralParams { n_samples: 50, theta: 1.0, rho: 0.0, region_len_bp: 500_000 };
    let scanner = OmegaScanner::new(ScanParams {
        grid: 10,
        min_win: 100,
        max_win: 100_000,
        ..ScanParams::default()
    })
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let small = simulate_fixed_sites(&neutral, 100, &mut rng).unwrap();
    let big = simulate_fixed_sites(&neutral, 400, &mut rng).unwrap();
    let small_out = scanner.scan(&small);
    let big_out = scanner.scan(&big);
    assert!(big_out.stats.omega_evaluations > 4 * small_out.stats.omega_evaluations);
}
