//! Format pipeline integration: simulated data must survive round trips
//! through the `ms` writer/reader and produce identical scan results.

use std::io::Cursor;

use omegaplus_rs::genome::ms::{read_ms, write_ms, MsReadOptions};
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn ms_roundtrip_preserves_scan_results() {
    let neutral = NeutralParams { n_samples: 25, theta: 40.0, rho: 15.0, region_len_bp: 90_000 };
    let mut rng = StdRng::seed_from_u64(11);
    let original = simulate_neutral(&neutral, &mut rng).unwrap();

    let mut text = Vec::new();
    write_ms(&mut text, std::slice::from_ref(&original)).unwrap();
    let parsed = read_ms(Cursor::new(&text), MsReadOptions { region_len: original.region_len() })
        .unwrap()
        .remove(0);

    assert_eq!(parsed.n_sites(), original.n_sites());
    assert_eq!(parsed.n_samples(), original.n_samples());

    let scanner = OmegaScanner::new(ScanParams {
        grid: 12,
        min_win: 500,
        max_win: 30_000,
        ..ScanParams::default()
    })
    .unwrap();
    let a = scanner.scan(&original);
    let b = scanner.scan(&parsed);
    for (x, y) in a.results.iter().zip(&b.results) {
        // Positions can shift by at most the bp quantisation of the
        // writer (six decimal digits of the unit interval).
        assert!(x.pos_bp.abs_diff(y.pos_bp) <= 2);
        assert!(
            (x.omega - y.omega).abs() <= 2e-2 * x.omega.abs().max(1.0),
            "{} vs {}",
            x.omega,
            y.omega
        );
    }
}

#[test]
fn multi_replicate_ms_files() {
    let neutral = NeutralParams { n_samples: 12, theta: 20.0, rho: 0.0, region_len_bp: 50_000 };
    let mut rng = StdRng::seed_from_u64(12);
    let reps: Vec<Alignment> =
        (0..4).map(|_| simulate_neutral(&neutral, &mut rng).unwrap()).collect();
    let mut text = Vec::new();
    write_ms(&mut text, &reps).unwrap();
    let parsed = read_ms(Cursor::new(&text), MsReadOptions { region_len: 50_000 }).unwrap();
    assert_eq!(parsed.len(), 4);
    for (a, b) in reps.iter().zip(&parsed) {
        assert_eq!(a.n_sites(), b.n_sites());
        assert_eq!(a.n_samples(), b.n_samples());
        for s in 0..a.n_sites() {
            assert_eq!(a.site(s).derived_count(), b.site(s).derived_count());
        }
    }
}

#[test]
fn sfs_shifts_toward_extremes_under_sweep() {
    use omegaplus_rs::genome::SiteFrequencySpectrum;
    // The classic companion signature (§II): sweeps push the SFS toward
    // low/high-frequency variants. Validates the simulator's realism.
    let neutral = NeutralParams { n_samples: 30, theta: 60.0, rho: 30.0, region_len_bp: 100_000 };
    let sweep = SweepParams { position: 0.5, alpha: 4.0, swept_fraction: 1.0 };
    let mut neutral_extreme = 0.0;
    let mut sweep_extreme = 0.0;
    for seed in 0..16 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let n = simulate_neutral(&neutral, &mut rng).unwrap();
        let s = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
        neutral_extreme += SiteFrequencySpectrum::from_alignment(&n).extreme_class_fraction();
        sweep_extreme += SiteFrequencySpectrum::from_alignment(&s).extreme_class_fraction();
    }
    assert!(
        sweep_extreme > neutral_extreme,
        "sweep SFS must be more extreme-shifted: {sweep_extreme} vs {neutral_extreme}"
    );
}
