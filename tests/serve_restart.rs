//! The root crash-recovery proof: a real `omegaplus serve` subprocess
//! is loaded, killed with SIGKILL, and rebooted on the same data dir —
//! finished results must come back byte-identical from the store, and
//! repeats must be warm-cache hits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_daemon(data_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_omegaplus"))
        .args([
            "serve",
            "-addr",
            "127.0.0.1:0",
            "-data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines.next().expect("daemon announces its address").expect("stderr reads");
        if let Some(at) = line.find("listening on http://") {
            break line[at + "listening on http://".len()..].trim().to_string();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// One `Connection: close` round-trip; small responses always carry
/// `Content-Length`, so EOF delimits the body.
fn http(addr: &str, request: &str) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    stream.write_all(request.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).to_string();
    let status = text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = text.find("\r\n\r\n").map(|at| text[at + 4..].to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post_scan(addr: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /scan HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn scan_body() -> String {
    let payload =
        "ms 6 1\n42\n\n//\nsegsites: 8\npositions: 0.05 0.15 0.30 0.45 0.55 0.70 0.85 0.95\n\
                   10110100\n01011010\n11010001\n00101101\n10011010\n01100101\n";
    format!("{{\"format\":\"ms\",\"payload\":{payload:?},\"params\":{{\"grid\":4}}}}")
}

/// The balanced-brace `"result"` object of a job body, byte for byte.
fn result_object(body: &str) -> &str {
    let start = body.find("\"result\":").expect("result field present") + "\"result\":".len();
    let bytes = body.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes[start..].iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'{' if !in_string => depth += 1,
            b'}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return &body[start..start + i + 1];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced result object");
}

fn counter(addr: &str, name: &str) -> u64 {
    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    omega_obs::parse_json(&stats)
        .expect("stats parse")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn sigkilled_daemon_recovers_results_byte_identical() {
    let data_dir = std::env::temp_dir().join(format!("omega-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut daemon = spawn_daemon(&data_dir);

    // Load the daemon: one scan run to completion.
    let body = scan_body();
    let (status, submit) = post_scan(&daemon.addr, &body);
    assert_eq!(status, 202, "{submit}");
    let id = omega_obs::parse_json(&submit)
        .expect("submit parses")
        .get("job")
        .and_then(|v| v.as_str())
        .expect("job id")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    let done_before = loop {
        let (status, poll) = get(&daemon.addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "{poll}");
        let state = omega_obs::parse_json(&poll)
            .expect("poll parses")
            .get("state")
            .and_then(|v| v.as_str())
            .expect("state")
            .to_string();
        match state.as_str() {
            "done" => break poll,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job stuck in {state}");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job reached {other}: {poll}"),
        }
    };

    // SIGKILL: no drain, no shutdown hooks — the WAL and store are all
    // that survives.
    daemon.child.kill().expect("SIGKILL lands");
    let _ = daemon.child.wait();

    let mut reborn = spawn_daemon(&data_dir);

    // The finished job answers under its original id with the exact
    // pre-crash result bytes.
    let (status, done_after) = get(&reborn.addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{done_after}");
    assert_eq!(
        omega_obs::parse_json(&done_after)
            .expect("recovered poll parses")
            .get("state")
            .and_then(|v| v.as_str()),
        Some("done"),
        "{done_after}"
    );
    assert_eq!(
        result_object(&done_before),
        result_object(&done_after),
        "recovered result is bit-identical"
    );

    // A repeat submission is a warm-cache hit: inline 200, zero misses
    // in the reborn process.
    let (status, replay) = post_scan(&reborn.addr, &body);
    assert_eq!(status, 200, "warm hit expected: {replay}");
    assert_eq!(result_object(&done_before), result_object(&replay), "bit-identical");
    assert_eq!(counter(&reborn.addr, "serve.cache_misses"), 0, "no cold misses after reboot");
    assert!(counter(&reborn.addr, "serve.store_rehydrated") >= 1, "store primed the cache");

    reborn.child.kill().expect("cleanup kill");
    let _ = reborn.child.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}
