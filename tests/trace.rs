//! Acceptance test for the observability flags: a GPU-backend scan with
//! `-trace` and `-metrics` must produce a parseable JSONL trace with spans
//! from every instrumented layer and a rich metrics snapshot.

use std::io::Write;
use std::process::Command;

use omegaplus_rs::genome::ms::write_ms;
use omegaplus_rs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn write_dataset(path: &std::path::Path) {
    let neutral = NeutralParams { n_samples: 20, theta: 30.0, rho: 15.0, region_len_bp: 80_000 };
    let sweep = SweepParams { position: 0.5, alpha: 10.0, swept_fraction: 1.0 };
    let mut rng = StdRng::seed_from_u64(5);
    let a = simulate_sweep(&neutral, &sweep, &mut rng).unwrap();
    let mut f = std::fs::File::create(path).unwrap();
    let mut buf = Vec::new();
    write_ms(&mut buf, &[a]).unwrap();
    f.write_all(&buf).unwrap();
}

#[test]
fn gpu_scan_emits_full_trace_and_metrics() {
    let dir = std::env::temp_dir().join("omegaplus_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.ms");
    let trace = dir.join("out.jsonl");
    write_dataset(&input);

    let out = Command::new(env!("CARGO_BIN_EXE_omegaplus"))
        .args([
            "-name",
            "trace-run",
            "-input",
            input.to_str().unwrap(),
            "-length",
            "80000",
            "-grid",
            "10",
            "-minwin",
            "500",
            "-maxwin",
            "30000",
            "-backend",
            "gpu",
            "-trace",
            trace.to_str().unwrap(),
            "-metrics",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // -metrics prints the registry table to stderr after the scan.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("omega.evaluations"), "metrics table missing: {stderr}");

    let events = omega_obs::read_trace(&trace).unwrap();
    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            omega_obs::TraceEvent::Span(s) => Some(s.name.as_str()),
            _ => None,
        })
        .collect();
    // One span from each instrumented layer a GPU run crosses: accel
    // dispatch, core matrix/ω, and the GPU cost model.
    for name in ["accel.detect", "matrix.advance", "omega.kernel", "gpu.estimate"] {
        assert!(span_names.contains(&name), "missing span '{name}' in {span_names:?}");
    }

    let snap = events
        .iter()
        .rev()
        .find_map(|e| match e {
            omega_obs::TraceEvent::Metrics(m) => Some(&m.snapshot),
            _ => None,
        })
        .expect("trace must end with a metrics snapshot");
    let distinct = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
    assert!(distinct >= 8, "only {distinct} distinct metric names");
}
