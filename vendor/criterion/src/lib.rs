//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root manifest).
//! It implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!` / `criterion_main!` — with a minimal
//! measurement loop: one warm-up call, then a short timed burst, reporting
//! mean wall time and derived throughput to stdout.
//!
//! There is no statistical analysis, HTML report, or baseline comparison.
//! Because the bench targets build with `harness = false`, `cargo test` also
//! executes them; the burst is capped (≤25 ms or 20 iterations per benchmark)
//! so the suite stays fast in that mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration work estimate used to derive a rate from wall time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. `from_parameter(4096)`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Two-part id (`function_name/parameter`).
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then a burst capped by time
    /// and iteration count, recording the mean per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let budget = Duration::from_millis(25);
        let max_iters = 20u32;
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < max_iters {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.mean = start.elapsed() / iters.max(1);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's burst is time-capped,
    /// so the requested sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration work estimate for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as a benchmark named `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b);
        self.report(&id.id, b.mean);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.id, b.mean);
        self
    }

    /// Ends the group (upstream prints summary statistics here).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean: Duration) {
        let secs = mean.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!(" ({:.3e} elem/s)", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!(" ({:.3e} B/s)", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!("bench {}/{}: {:?}/iter{}", self.name, id, mean, rate);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b);
        println!("bench {}: {:?}/iter", id, b.mean);
        self
    }
}

/// Bundles benchmark functions under one name (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn bencher_records_nonzero_mean() {
        let mut b = Bencher { mean: Duration::ZERO };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.mean >= Duration::from_micros(50));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4096).id, "4096");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }
}
