//! Offline stand-in for `loom`, implementing exactly the API surface the
//! workspace's `--cfg loom` model tests use (the build environment has no
//! registry access, so external dependencies resolve to in-tree
//! stand-ins — see `[patch.crates-io]` in the workspace manifest).
//!
//! Honesty note on fidelity: real loom is a *permutation-exhaustive*
//! model checker — it replays a test body under every reduced thread
//! interleaving via DPOR. This stand-in is a **pseudo-exhaustive
//! randomized explorer**: [`model`] replays the body [`ITERATIONS`]
//! times on real OS threads, and every atomic operation routed through
//! [`sync::atomic`] injects a deterministic pseudo-random sequence of
//! `std::thread::yield_now` calls, perturbing the schedule differently
//! on each replay. It explores a broad sample of interleavings rather
//! than all of them, so a passing run is strong evidence, not proof.
//! The API is kept loom-shaped so the tests port unchanged if the real
//! checker ever becomes available.
//!
//! Determinism: the yield decisions come from a per-replay seeded
//! [SplitMix64] stream shared by all threads, so a given toolchain and
//! thread-timing regime replays similar schedules; OS scheduling still
//! contributes real nondeterminism on top (which real loom forbids, but
//! which only *widens* the explored schedule set here).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Replays per [`model`] call. Kept modest so the gated loom CI job
/// stays in seconds; raise via `LOOM_MAX_ITER` if hunting a race.
pub const ITERATIONS: usize = 64;

/// Global schedule-perturbation stream for the current replay.
static SCHEDULE: AtomicU64 = AtomicU64::new(0);

/// Draws the next perturbation word (SplitMix64 over a shared state).
fn next_word() -> u64 {
    let z = SCHEDULE.fetch_add(0x9E37_79B9_7F4A_7C15, StdOrdering::Relaxed);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Yield-point hook: called before every modelled atomic operation.
/// Yields 0–3 times depending on the perturbation stream, handing the
/// OS scheduler a different preemption pattern each replay.
fn perturb() {
    let w = next_word();
    // Bias towards not yielding so fast paths are also explored.
    if w & 0b11 == 0 {
        for _ in 0..(w >> 2 & 0b11) {
            std::thread::yield_now();
        }
    }
}

/// Runs `f` under [`ITERATIONS`] schedule-perturbed replays (or
/// `LOOM_MAX_ITER` if set). Panics from any replay propagate, failing
/// the enclosing test with the replay index in the message.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iterations = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(ITERATIONS);
    for replay in 0..iterations {
        // Re-seed the perturbation stream so each replay explores a
        // different (but deterministic-in-sequence) yield pattern.
        SCHEDULE.store((replay as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F), StdOrdering::SeqCst);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!("loom (stand-in): model failed on replay {replay}/{iterations}");
            std::panic::resume_unwind(payload);
        }
    }
}

pub mod thread {
    //! Thread spawning with a yield point at spawn and join edges.

    /// Handle to a modelled thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Joins, propagating the thread's panic like `std::thread`.
        pub fn join(self) -> std::thread::Result<T> {
            super::perturb();
            self.0.join()
        }
    }

    /// Spawns a modelled thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::perturb();
        JoinHandle(std::thread::spawn(move || {
            super::perturb();
            f()
        }))
    }

    /// Explicit yield point.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! Synchronization primitives with scheduling perturbation.

    pub use std::sync::Arc;

    pub mod atomic {
        //! Atomics whose every operation is a yield point.

        pub use std::sync::atomic::Ordering;

        /// `AtomicUsize` with schedule perturbation on each access.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            pub fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }

            pub fn load(&self, order: Ordering) -> usize {
                crate::perturb();
                self.0.load(order)
            }

            pub fn store(&self, v: usize, order: Ordering) {
                crate::perturb();
                self.0.store(v, order);
            }

            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                crate::perturb();
                self.0.fetch_add(v, order)
            }

            #[allow(clippy::missing_errors_doc)]
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                success: Ordering,
                failure: Ordering,
            ) -> Result<usize, usize> {
                crate::perturb();
                self.0.compare_exchange(current, new, success, failure)
            }
        }

        /// `AtomicU64` with schedule perturbation on each access.
        #[derive(Debug, Default)]
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            pub fn new(v: u64) -> Self {
                AtomicU64(std::sync::atomic::AtomicU64::new(v))
            }

            pub fn load(&self, order: Ordering) -> u64 {
                crate::perturb();
                self.0.load(order)
            }

            pub fn store(&self, v: u64, order: Ordering) {
                crate::perturb();
                self.0.store(v, order);
            }

            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                crate::perturb();
                self.0.fetch_add(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_body_many_times() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), super::ITERATIONS);
    }

    #[test]
    fn spawned_threads_interleave_and_join() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
            assert_eq!(n.load(Ordering::Relaxed), 3);
        });
    }

    #[test]
    fn model_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| panic!("seeded failure"));
        });
        assert!(result.is_err());
    }
}
