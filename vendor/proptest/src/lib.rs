//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root manifest).
//! It implements the subset of the proptest 1.x API the workspace's property
//! tests use: range and tuple strategies, `collection::vec`, `prop_map` /
//! `prop_flat_map`, the `proptest!` macro with `#![proptest_config(..)]`, and
//! the `prop_assume!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the formatted assertion message and the case's deterministic seed.
//! Cases are generated from a fixed per-test seed, so failures reproduce.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything the workspace imports via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Vector-of-`elem` strategy.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors of `elem` with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Deterministic per-test RNG (stable across runs for reproducibility).
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Rejects the current case when `cond` is false (`prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when `cond` is false (`prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the operands differ (`prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Declares property tests (`proptest! { ... }`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(64).max(1024);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "prop_assume! rejected too many cases ({} accepted of {} wanted)",
                    accepted,
                    config.cases
                );
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", accepted, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(Vec<u8>);

    fn wrapped(n: usize) -> impl Strategy<Value = Wrapped> {
        crate::collection::vec(0u8..3, n).prop_map(Wrapped)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 2usize..12, z in 0.0f32..10.0) {
            prop_assert!(x < 100);
            prop_assert!((2..12).contains(&y));
            prop_assert!((0.0..10.0).contains(&z), "z out of range: {}", z);
        }

        #[test]
        fn vec_and_map_compose(v in wrapped(5), w in crate::collection::vec(0u8..2, 1..6)) {
            prop_assert_eq!(v.0.len(), 5);
            prop_assert!((1..6).contains(&w.len()));
            prop_assert!(w.iter().all(|&b| b < 2));
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..8, 2usize..8).prop_flat_map(|(a, b)| {
            (crate::collection::vec(0u32..10, a), crate::collection::vec(0u32..10, b))
        })) {
            prop_assert!((2..8).contains(&pair.0.len()));
            prop_assert!((2..8).contains(&pair.1.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = crate::collection::vec(0u8..255, 16);
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
