//! Offline stand-in for the `rand` crate, implementing the 0.8 API subset
//! this workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root manifest). The generator is xoshiro256++ seeded through SplitMix64 —
//! not the ChaCha12 generator of upstream `StdRng`, so *streams differ from
//! upstream*, but every in-repo use is either statistical (tolerance-based
//! tests) or determinism-within-process (fixed seeds), which this preserves.

use std::ops::Range;

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of one rejection-free draw is irrelevant at the spans
                // used here, but reject to keep it exact anyway.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        let u = f32::sample(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing generation methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value over the type's full domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic construction from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 2];
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..2);
            seen[v as usize] = true;
        }
        assert!(seen[0] && seen[1]);
        for _ in 0..1000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
