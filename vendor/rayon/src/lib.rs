//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the workspace patches
//! `rayon` to this crate (see `[patch.crates-io]` in the root manifest). It
//! exposes the API surface the workspace uses — `par_iter`, `into_par_iter`,
//! `par_chunks`, `par_chunks_mut`, thread pools — but executes **sequentially**
//! on the calling thread: the parallel adapters return the corresponding
//! standard-library iterators, so `map`/`zip`/`for_each`/`collect` chains
//! compile and produce identical results in deterministic order.
//!
//! The benchmark host is single-core (see DESIGN.md), so sequential execution
//! also matches the real achievable parallelism; when the workspace moves to a
//! multicore environment, swap the patch back to upstream rayon — no call
//! sites change.

use std::ops::Range;

/// Everything the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of threads the (sequential) pool exposes.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// By-value conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts into the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Range<usize>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = Range<u64>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// By-reference conversion (`.par_iter()`) for collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterates by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Chunked access for shared slices.
pub trait ParallelSlice<T> {
    /// Chunked iteration (`.par_chunks(n)`).
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Chunked access for mutable slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunked iteration (`.par_chunks_mut(n)`).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Error building a thread pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Sequential "thread pool": `install` runs the closure on the caller.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` in the pool (here: inline).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// Configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requested worker count (0 = one per core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builds the (sequential) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 { current_num_threads() } else { self.threads };
        Ok(ThreadPool { threads })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn iterator_chains_compile_and_agree() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        let s: u32 = (0..10usize).into_par_iter().map(|x| x as u32).sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn chunked_mutation() {
        let mut out = vec![0u32; 12];
        let src: Vec<u32> = (0..4).collect();
        out.par_chunks_mut(3).zip(src.par_iter()).for_each(|(chunk, &v)| {
            for c in chunk {
                *c = v;
            }
        });
        assert_eq!(out, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
        assert!(current_num_threads() >= 1);
    }
}
