//! Offline stand-in for `syn`, implementing exactly the API surface the
//! `omega-lint` crate uses (the build environment has no registry access,
//! so external dependencies resolve to in-tree stand-ins — see the
//! `[patch.crates-io]` table in the workspace manifest).
//!
//! What the lint pass needs from `syn` is the *token-tree layer*:
//! [`parse_file`] lexes Rust source into a stream of spanned
//! [`TokenTree`]s with balanced delimiter [`Group`]s — the same shape
//! `proc_macro2::TokenStream` has, with line/column [`Span`]s. The full
//! typed AST (items, expressions, patterns) is deliberately not
//! reproduced: every `omega-lint` rule is expressible over token trees
//! plus light structural scanning (attribute groups, macro bangs), and a
//! token lexer can be implemented faithfully in a few hundred lines
//! whereas the typed grammar cannot.
//!
//! Faithful-lexing guarantees (these are what the rules rely on):
//!
//! * comments (line, nested block, doc) are skipped, so commented-out
//!   code never produces findings;
//! * string/char/byte/raw-string literals are lexed as single
//!   [`Literal`]s, so operators inside them never produce findings;
//! * multi-character operators (`==`, `->`, `::`, …) are single
//!   [`Punct`]s, longest-match first;
//! * every token carries the 1-based line and column where it starts.

use std::fmt;

/// A source position: 1-based line and column of a token's first char.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub column: usize,
}

/// A lex error (unbalanced delimiter, unterminated literal or comment).
#[derive(Debug, Clone)]
pub struct Error {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for Error {}

/// Bracket kind of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    Parenthesis,
    Brace,
    Bracket,
}

/// An identifier, keyword, or lifetime (lifetimes keep their `'`).
#[derive(Debug, Clone)]
pub struct Ident {
    text: String,
    span: Span,
}

impl Ident {
    pub fn as_str(&self) -> &str {
        &self.text
    }

    pub fn span(&self) -> Span {
        self.span
    }
}

/// An operator or other punctuation; multi-char operators are one token.
#[derive(Debug, Clone)]
pub struct Punct {
    op: String,
    span: Span,
}

impl Punct {
    pub fn as_str(&self) -> &str {
        &self.op
    }

    pub fn span(&self) -> Span {
        self.span
    }
}

/// A literal: number, string, raw string, byte string, or char. `text`
/// is the raw source slice including quotes/prefixes/suffixes.
#[derive(Debug, Clone)]
pub struct Literal {
    text: String,
    span: Span,
}

impl Literal {
    pub fn as_str(&self) -> &str {
        &self.text
    }

    pub fn span(&self) -> Span {
        self.span
    }

    /// The contents of a plain `"…"` string literal with no escapes
    /// (instrument names and the like); `None` for any other literal.
    pub fn str_value(&self) -> Option<&str> {
        let inner = self.text.strip_prefix('"')?.strip_suffix('"')?;
        if inner.contains('\\') {
            return None;
        }
        Some(inner)
    }

    /// Whether this is a floating-point number literal (`1.5`, `2e9`,
    /// `0.0f32`, `3f64`) rather than an integer or a quoted literal.
    pub fn is_float(&self) -> bool {
        let t = &self.text;
        let Some(first) = t.chars().next() else { return false };
        if !first.is_ascii_digit() {
            return false;
        }
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        t.contains('.')
            || t.ends_with("f32")
            || t.ends_with("f64")
            || t.contains('e')
            || t.contains('E')
    }
}

/// A balanced `(…)`, `{…}`, or `[…]` with its contents.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    tokens: Vec<TokenTree>,
    span: Span,
}

impl Group {
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    pub fn tokens(&self) -> &[TokenTree] {
        &self.tokens
    }

    /// Span of the opening delimiter.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    Ident(Ident),
    Punct(Punct),
    Literal(Literal),
    Group(Group),
}

impl TokenTree {
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Ident(t) => t.span(),
            TokenTree::Punct(t) => t.span(),
            TokenTree::Literal(t) => t.span(),
            TokenTree::Group(t) => t.span(),
        }
    }
}

/// A lexed source file: the top-level token stream.
#[derive(Debug, Clone)]
pub struct File {
    pub tokens: Vec<TokenTree>,
}

/// Multi-character operators, longest first so lexing is greedy.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "<<", ">>", "..", "::", "->", "=>",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, column: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span { line: self.line, column: self.column }
    }

    fn error(&self, message: &str) -> Error {
        Error { message: message.to_string(), line: self.line, column: self.column }
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) -> Result<(), Error> {
        // Called with `/*` not yet consumed; block comments nest.
        let mut depth = 0usize;
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.error("unterminated block comment")),
            }
        }
    }

    /// Consumes a quoted literal body after its opening quote, honouring
    /// backslash escapes. `quote` is `"` or `'`.
    fn quoted_body(&mut self, quote: char, out: &mut String) -> Result<(), Error> {
        loop {
            match self.bump() {
                Some('\\') => {
                    out.push('\\');
                    match self.bump() {
                        Some(e) => out.push(e),
                        None => return Err(self.error("unterminated escape")),
                    }
                }
                Some(c) if c == quote => {
                    out.push(c);
                    return Ok(());
                }
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated literal")),
            }
        }
    }

    /// Consumes a raw-string body after the opening `"`: text until a
    /// `"` followed by `hashes` `#`s.
    fn raw_body(&mut self, hashes: usize, out: &mut String) -> Result<(), Error> {
        loop {
            match self.bump() {
                Some('"') => {
                    out.push('"');
                    if (0..hashes).all(|i| self.peek(i) == Some('#')) {
                        for _ in 0..hashes {
                            out.push(self.bump().unwrap_or('#'));
                        }
                        return Ok(());
                    }
                }
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated raw string")),
            }
        }
    }

    fn lex_number(&mut self, span: Span, first: char) -> Literal {
        let mut text = String::new();
        text.push(first);
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    text.push(self.bump().unwrap_or(c));
                }
                // `1.5` continues the number; `1..2` and `1.max(2)` stop.
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    text.push(self.bump().unwrap_or('.'));
                }
                // Exponent sign: `1e-6`, `2.5E+3`.
                Some(c @ ('+' | '-'))
                    if text.ends_with(['e', 'E'])
                        && !text.starts_with("0x")
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    text.push(self.bump().unwrap_or(c));
                }
                _ => break,
            }
        }
        Literal { text, span }
    }

    fn lex_ident(&mut self, first: char) -> String {
        let mut text = String::new();
        text.push(first);
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap_or(c));
            } else {
                break;
            }
        }
        text
    }

    fn next_token(&mut self) -> Result<Option<Token>, Error> {
        loop {
            let span = self.span();
            let Some(c) = self.peek(0) else { return Ok(None) };

            // Whitespace and comments.
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' && self.peek(1) == Some('/') {
                self.skip_line_comment();
                continue;
            }
            if c == '/' && self.peek(1) == Some('*') {
                self.skip_block_comment()?;
                continue;
            }

            // Delimiters.
            if let Some(d) = match c {
                '(' => Some(Token::Open(Delimiter::Parenthesis, span)),
                '{' => Some(Token::Open(Delimiter::Brace, span)),
                '[' => Some(Token::Open(Delimiter::Bracket, span)),
                ')' => Some(Token::Close(Delimiter::Parenthesis)),
                '}' => Some(Token::Close(Delimiter::Brace)),
                ']' => Some(Token::Close(Delimiter::Bracket)),
                _ => None,
            } {
                self.bump();
                return Ok(Some(d));
            }

            // Lifetime vs char literal: `'` + ident-start not followed by
            // a closing `'` is a lifetime (`'a`, `'static`).
            if c == '\'' {
                let is_lifetime = self.peek(1).is_some_and(|n| n.is_alphabetic() || n == '_')
                    && self.peek(2) != Some('\'');
                self.bump();
                if is_lifetime {
                    let mut text = String::from("'");
                    while let Some(n) = self.peek(0) {
                        if n.is_alphanumeric() || n == '_' {
                            text.push(self.bump().unwrap_or(n));
                        } else {
                            break;
                        }
                    }
                    return Ok(Some(Token::Tree(TokenTree::Ident(Ident { text, span }))));
                }
                let mut text = String::from("'");
                self.quoted_body('\'', &mut text)?;
                return Ok(Some(Token::Tree(TokenTree::Literal(Literal { text, span }))));
            }

            // Strings (plain, raw, byte, raw-byte) and raw identifiers.
            if c == '"' {
                self.bump();
                let mut text = String::from("\"");
                self.quoted_body('"', &mut text)?;
                return Ok(Some(Token::Tree(TokenTree::Literal(Literal { text, span }))));
            }
            if c == 'r' || c == 'b' {
                if let Some(tok) = self.try_lex_prefixed(span)? {
                    return Ok(Some(tok));
                }
            }

            // Numbers.
            if c.is_ascii_digit() {
                self.bump();
                let lit = self.lex_number(span, c);
                return Ok(Some(Token::Tree(TokenTree::Literal(lit))));
            }

            // Identifiers and keywords.
            if c.is_alphabetic() || c == '_' {
                self.bump();
                let text = self.lex_ident(c);
                return Ok(Some(Token::Tree(TokenTree::Ident(Ident { text, span }))));
            }

            // Operators, longest match first.
            for op in OPS {
                if op.chars().enumerate().all(|(i, oc)| self.peek(i) == Some(oc)) {
                    for _ in 0..op.len() {
                        self.bump();
                    }
                    return Ok(Some(Token::Tree(TokenTree::Punct(Punct {
                        op: (*op).to_string(),
                        span,
                    }))));
                }
            }
            self.bump();
            return Ok(Some(Token::Tree(TokenTree::Punct(Punct { op: c.to_string(), span }))));
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns `None` when the `r`/`b` is just the start of a plain ident.
    fn try_lex_prefixed(&mut self, span: Span) -> Result<Option<Token>, Error> {
        let c = self.peek(0).unwrap_or(' ');
        let mut prefix_len = 1usize;
        let mut raw = false;
        match (c, self.peek(1)) {
            ('r', Some('"')) => raw = true,
            ('r', Some('#')) => {
                // `r##…"` raw string vs `r#ident` raw identifier.
                let mut j = 1;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                if self.peek(j) == Some('"') {
                    raw = true;
                } else {
                    // Raw identifier: consume `r#` then the ident.
                    self.bump();
                    self.bump();
                    let first = self.bump().ok_or_else(|| self.error("bare r#"))?;
                    let rest = self.lex_ident(first);
                    return Ok(Some(Token::Tree(TokenTree::Ident(Ident {
                        text: format!("r#{rest}"),
                        span,
                    }))));
                }
            }
            ('b', Some('"')) | ('b', Some('\'')) => {}
            ('b', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => {
                raw = true;
                prefix_len = 2;
            }
            _ => return Ok(None),
        }

        let mut text = String::new();
        for _ in 0..prefix_len {
            text.push(self.bump().unwrap_or(' '));
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                text.push(self.bump().unwrap_or('#'));
                hashes += 1;
            }
            match self.bump() {
                Some('"') => text.push('"'),
                _ => return Err(self.error("malformed raw string")),
            }
            self.raw_body(hashes, &mut text)?;
        } else {
            let quote = self.bump().ok_or_else(|| self.error("unterminated literal"))?;
            text.push(quote);
            self.quoted_body(quote, &mut text)?;
        }
        Ok(Some(Token::Tree(TokenTree::Literal(Literal { text, span }))))
    }
}

enum Token {
    Tree(TokenTree),
    Open(Delimiter, Span),
    Close(Delimiter),
}

/// Lexes a whole source file into a balanced token tree.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let mut lexer = Lexer::new(src);
    // Stack of open groups: (delimiter, open-span, accumulated tokens).
    let mut stack: Vec<(Delimiter, Span, Vec<TokenTree>)> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();

    while let Some(tok) = lexer.next_token()? {
        match tok {
            Token::Tree(t) => {
                stack.last_mut().map_or(&mut top, |(_, _, v)| v).push(t);
            }
            Token::Open(d, span) => stack.push((d, span, Vec::new())),
            Token::Close(d) => match stack.pop() {
                Some((open, span, tokens)) if open == d => {
                    let group = TokenTree::Group(Group { delimiter: d, tokens, span });
                    stack.last_mut().map_or(&mut top, |(_, _, v)| v).push(group);
                }
                Some((open, span, _)) => {
                    return Err(Error {
                        message: format!("mismatched delimiter: opened {open:?}, closed {d:?}"),
                        line: span.line,
                        column: span.column,
                    })
                }
                None => {
                    return Err(Error {
                        message: format!("unbalanced closing {d:?}"),
                        line: lexer.line,
                        column: lexer.column,
                    })
                }
            },
        }
    }
    if let Some((open, span, _)) = stack.pop() {
        return Err(Error {
            message: format!("unclosed {open:?}"),
            line: span.line,
            column: span.column,
        });
    }
    Ok(File { tokens: top })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(tokens: &[TokenTree], out: &mut Vec<String>) {
        for t in tokens {
            match t {
                TokenTree::Ident(i) => out.push(format!("i:{}", i.as_str())),
                TokenTree::Punct(p) => out.push(format!("p:{}", p.as_str())),
                TokenTree::Literal(l) => out.push(format!("l:{}", l.as_str())),
                TokenTree::Group(g) => {
                    out.push(format!("g:{:?}", g.delimiter()));
                    flat(g.tokens(), out);
                    out.push("end".into());
                }
            }
        }
    }

    fn lex(src: &str) -> Vec<String> {
        let mut out = Vec::new();
        flat(&parse_file(src).expect("parse").tokens, &mut out);
        out
    }

    #[test]
    fn idents_ops_and_groups() {
        assert_eq!(
            lex("fn f(a: u32) -> u32 { a == 1 }"),
            [
                "i:fn",
                "i:f",
                "g:Parenthesis",
                "i:a",
                "p::",
                "i:u32",
                "end",
                "p:->",
                "i:u32",
                "g:Brace",
                "i:a",
                "p:==",
                "l:1",
                "end"
            ]
        );
    }

    #[test]
    fn comments_and_strings_hide_operators() {
        let toks = lex("let s = \"a == b\"; // x == y\n/* z == w */ let t = 1;");
        assert!(!toks.contains(&"p:==".to_string()));
        assert!(toks.contains(&"l:\"a == b\"".to_string()));
    }

    #[test]
    fn float_literals() {
        let f = |s: &str| {
            let file = parse_file(s).unwrap();
            match &file.tokens[0] {
                TokenTree::Literal(l) => l.is_float(),
                other => panic!("{other:?}"),
            }
        };
        assert!(f("1.5"));
        assert!(f("1e-6"));
        assert!(f("2.5E+3"));
        assert!(f("0.0f32"));
        assert!(f("3f64"));
        assert!(!f("42"));
        assert!(!f("0xff"));
        assert!(!f("1_000"));
    }

    #[test]
    fn number_then_method_call_and_range() {
        assert_eq!(lex("1.max(2)")[..2], ["l:1", "p:."]);
        assert_eq!(lex("0..10"), ["l:0", "p:..", "l:10"]);
        assert_eq!(lex("1..=3"), ["l:1", "p:..=", "l:3"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(lex("&'a str"), ["p:&", "i:'a", "i:str"]);
        assert_eq!(lex("'x'"), ["l:'x'"]);
        assert_eq!(lex("'\\n'"), ["l:'\\n'"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(lex("r\"a\""), ["l:r\"a\""]);
        assert_eq!(lex("r#\"a \" b\"#"), ["l:r#\"a \" b\"#"]);
        assert_eq!(lex("b\"xy\""), ["l:b\"xy\""]);
        assert_eq!(lex("br#\"q\"#"), ["l:br#\"q\"#"]);
        assert_eq!(lex("r#fn"), ["i:r#fn"]);
    }

    #[test]
    fn str_value_strips_quotes() {
        let file = parse_file("\"scan.steals\"").unwrap();
        match &file.tokens[0] {
            TokenTree::Literal(l) => assert_eq!(l.str_value(), Some("scan.steals")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spans_are_one_based_lines() {
        let file = parse_file("a\nbb\n  c").unwrap();
        let spans: Vec<(usize, usize)> =
            file.tokens.iter().map(|t| (t.span().line, t.span().column)).collect();
        assert_eq!(spans, [(1, 1), (2, 1), (3, 3)]);
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!(parse_file("fn f( {").is_err());
        assert!(parse_file("}").is_err());
        assert!(parse_file("\"oops").is_err());
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(lex("/* a /* b */ c */ x"), ["i:x"]);
    }
}
